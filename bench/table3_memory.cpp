//===- table3_memory.cpp - bonus table: matching-structure footprints ---------===//
//
// Part of the mfsa project. MIT License.
//
// A memory-footprint companion to the paper's compression study (§VI-A
// motivates compression as "directly impacting the representation of the
// FSAs, hence their memory footprint"): bytes of the pre-processed matching
// structure per dataset for each execution strategy this library implements.
// Not a table in the paper — it quantifies the §II/§VII trade-offs the
// narrative describes.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "engine/DfaEngine.h"
#include "engine/MultiStride.h"
#include "fsa/Determinize.h"

using namespace mfsa;
using namespace mfsa::bench;

int main() {
  printHeader("Bonus table - matching-structure memory footprint [KB]",
              "§VI-A memory motivation; §II/§VII trade-offs");
  BenchReport Report("table3_memory",
                     "§VI-A memory motivation; §II/§VII trade-offs");

  std::printf("%-8s %12s %12s %12s %12s\n", "dataset", "iNFAnt(M=1)",
              "iMFAnt(all)", "perDFA", "perDFA-s2");
  for (const DatasetSpec &Spec : standardDatasets()) {
    CompiledDataset Dataset = compileDataset(Spec, /*StreamSize=*/0);

    size_t InfantBytes = 0;
    for (const ImfantEngine &Engine : buildEngines(Dataset, 1))
      InfantBytes += Engine.footprintBytes();
    size_t MfsaBytes = buildEngines(Dataset, 0)[0].footprintBytes();

    size_t DfaBytes = 0, StridedBytes = 0;
    bool DfaOk = true;
    for (size_t I = 0; I < Dataset.OptimizedFsas.size() && DfaOk; ++I) {
      Result<Dfa> D = determinize({Dataset.OptimizedFsas[I]},
                                  {static_cast<uint32_t>(I)});
      if (!D.ok()) {
        DfaOk = false;
        break;
      }
      DfaBytes += D->footprintBytes();
      Result<StridedDfa> S2 = makeStride2(*D);
      if (S2.ok())
        StridedBytes += S2->footprintBytes();
      else
        DfaOk = false;
    }

    std::printf("%-8s %12zu %12zu", Spec.Abbrev.c_str(), InfantBytes / 1024,
                MfsaBytes / 1024);
    if (DfaOk)
      std::printf(" %12zu %12zu\n", DfaBytes / 1024, StridedBytes / 1024);
    else
      std::printf(" %12s %12s\n", "exploded", "exploded");
    Report.result(Spec.Abbrev + ".infant_m1_kb",
                  static_cast<double>(InfantBytes) / 1024.0, "KB");
    Report.result(Spec.Abbrev + ".imfant_all_kb",
                  static_cast<double>(MfsaBytes) / 1024.0, "KB");
    if (DfaOk) {
      Report.result(Spec.Abbrev + ".per_dfa_kb",
                    static_cast<double>(DfaBytes) / 1024.0, "KB");
      Report.result(Spec.Abbrev + ".per_dfa_stride2_kb",
                    static_cast<double>(StridedBytes) / 1024.0, "KB");
    }
  }
  std::printf("\nexpected shape: the merged MFSA is the smallest executable "
              "form (shared transitions stored once); DFAs and especially "
              "strided DFAs trade memory for per-byte speed\n");
  return 0;
}
