//===- fig_input_parallel.cpp - input-parallel scan scaling ------------------===//
//
// Part of the mfsa project. MIT License.
//
// Input-parallel scanning of ONE stream (engine/InputParallel.h): the
// stream is split into T chunks scanned independently with frontier-set
// boundary stitching, and the modeled critical-path wall (max per-chunk
// seconds + join) is compared against the sequential scan.
//
// Three engine families per Table I dataset:
//
//  - **Per-rule DFA pool** (headline): the paper's M = 1 baseline family,
//    each rule's DFA scanned input-parallel. Small automata collapse the
//    per-start state map to one class within bytes, the fast path takes
//    over at sequential per-byte cost, and the modeled T=4 speedup
//    approaches 4 — the committed-baseline gate.
//  - **Union DFA** (informational): one DFA over the first K<=48 rules.
//    `.*`-memory bits keep hundreds of start-state classes distinct, so
//    these rows exercise the collapse guard and the correct-but-serial
//    re-scan fallback rather than the speedup.
//  - **Dense iMFAnt** (informational): Table I rules keep the union death
//    probe alive, so boundaries resolve by outcome table or carry re-scan;
//    the rows document the observed mix.
//
// Every parallel scan's (rule, end) match set is compared byte-for-byte
// against the sequential oracle; any divergence exits nonzero.
//
// The modeled wall is deterministic on a single-core machine: phase 1 runs
// chunks serially, each timed in isolation (UseThreadPool=false), and
// modeledWallSeconds() takes the critical path. For the pool, chunk i of
// every rule runs on (notional) thread i, so per-chunk seconds accumulate
// element-wise across rules (the PlannedEngineSet::runInputParallel model).
// docs/performance.md documents the methodology.
//
// Extra knob: MFSA_BIG_STREAM_BYTES=<n> (default 0 = skip) appends rows
// scanning an <n>-byte stream of the first dataset's pool.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "analysis/CostModel.h"
#include "engine/DfaEngine.h"
#include "engine/InputParallel.h"
#include "fsa/Determinize.h"
#include "mfsa/Merge.h"
#include "support/Timer.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

using namespace mfsa;
using namespace mfsa::bench;

namespace {

using Match = std::pair<uint32_t, uint64_t>;

std::vector<Match> sortedMatches(const MatchRecorder &Recorder) {
  std::vector<Match> Out(Recorder.matches().begin(),
                         Recorder.matches().end());
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// Per-rule DFAs over the first min(48, N) rules; rules whose
/// determinization fails are skipped (counted in Skipped).
struct DfaPool {
  std::vector<std::unique_ptr<Dfa>> Dfas;
  uint32_t Skipped = 0;
};

DfaPool buildPool(const CompiledDataset &Dataset) {
  DfaPool Pool;
  const uint32_t K = std::min<uint32_t>(
      48, static_cast<uint32_t>(Dataset.OptimizedFsas.size()));
  for (uint32_t R = 0; R < K; ++R) {
    Result<Dfa> D = determinize({Dataset.OptimizedFsas[R]}, {R});
    if (D.ok())
      Pool.Dfas.push_back(std::make_unique<Dfa>(D.take()));
    else
      ++Pool.Skipped;
  }
  return Pool;
}

/// Sequential pool scan: every rule's DfaEngine over the stream, one wall.
double timeSequentialPool(const DfaPool &Pool, std::string_view Stream,
                          std::vector<Match> &Oracle) {
  Oracle.clear();
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  Timer Wall;
  for (const std::unique_ptr<Dfa> &D : Pool.Dfas)
    DfaEngine(*D).run(Stream, Recorder);
  double Sec = Wall.elapsedSec();
  Oracle = sortedMatches(Recorder);
  return Sec;
}

/// Input-parallel pool scan at T chunks. Chunk i of every rule runs on
/// (notional) thread i, so per-chunk phase-1 seconds add element-wise
/// across rules and the modeled wall stays the critical path of the whole
/// pool. \returns the modeled seconds, or nullopt on a match divergence.
std::optional<double> timeParallelPool(const DfaPool &Pool,
                                       std::string_view Stream, unsigned T,
                                       const std::vector<Match> &Oracle,
                                       InputParallelStats *Merged = nullptr) {
  InputParallelOptions Opts;
  Opts.Threads = T;
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  InputParallelStats Total;
  for (const std::unique_ptr<Dfa> &D : Pool.Dfas) {
    InputParallelRun Par(*D, Opts);
    InputParallelStats Stats;
    Par.run(Stream, Recorder, &Stats);
    Total.Threads = std::max(Total.Threads, Stats.Threads);
    Total.Chunks += Stats.Chunks;
    Total.SpecTableChunks += Stats.SpecTableChunks;
    Total.RescanFallbackChunks += Stats.RescanFallbackChunks;
    Total.OverlapBytes += Stats.OverlapBytes;
    Total.MaxAliveClasses =
        std::max(Total.MaxAliveClasses, Stats.MaxAliveClasses);
    if (Total.ChunkPhase1Seconds.size() < Stats.ChunkPhase1Seconds.size())
      Total.ChunkPhase1Seconds.resize(Stats.ChunkPhase1Seconds.size(), 0.0);
    for (size_t I = 0; I < Stats.ChunkPhase1Seconds.size(); ++I)
      Total.ChunkPhase1Seconds[I] += Stats.ChunkPhase1Seconds[I];
    Total.JoinSeconds += Stats.JoinSeconds;
  }
  if (sortedMatches(Recorder) != Oracle)
    return std::nullopt;
  if (Merged)
    *Merged = Total;
  return Total.modeledWallSeconds();
}

} // namespace

int main() {
  printHeader("Input-parallel scan scaling - one stream, T chunks",
              "ROADMAP input-parallel axis (PaREM / SFA lineage, §VI-C2)");
  BenchReport Report("fig_input_parallel",
                     "ROADMAP input-parallel axis (PaREM / SFA lineage)");
  const size_t BigBytes =
      static_cast<size_t>(envOr("MFSA_BIG_STREAM_BYTES", 0));
  Report.config("big_stream_bytes", static_cast<uint64_t>(BigBytes));

  const unsigned ThreadCounts[] = {2, 4, 8};
  std::vector<double> PoolSpeedupsT4;

  std::printf("%-8s | %5s | %9s %9s %9s %9s | %7s | %8s\n", "dataset",
              "rules", "seq[s]", "t2[s]", "t4[s]", "t8[s]", "t4-spd",
              "matches");
  for (const DatasetSpec &Spec : standardDatasets()) {
    CompiledDataset Dataset = compileDataset(Spec, streamBytes());

    // --- per-rule DFA pool: the headline scaling rows --------------------
    DfaPool Pool = buildPool(Dataset);
    if (Pool.Dfas.empty()) {
      std::printf("%-8s | every per-rule determinization failed\n",
                  Spec.Abbrev.c_str());
      continue;
    }
    std::vector<Match> Oracle;
    double SeqSec = 0;
    for (unsigned Rep = 0; Rep < repetitions(); ++Rep) {
      double Sec = timeSequentialPool(Pool, Dataset.Stream, Oracle);
      if (Rep == 0 || Sec < SeqSec)
        SeqSec = Sec;
    }
    Report.result(Spec.Abbrev + ".pool_seq_s", SeqSec, "s");
    Report.result(Spec.Abbrev + ".pool_matches",
                  static_cast<double>(Oracle.size()), "matches");

    double T4Sec = 0;
    double ParSecs[3] = {0, 0, 0};
    for (size_t TI = 0; TI < 3; ++TI) {
      InputParallelStats Stats;
      double Best = 0;
      for (unsigned Rep = 0; Rep < repetitions(); ++Rep) {
        std::optional<double> Sec = timeParallelPool(
            Pool, Dataset.Stream, ThreadCounts[TI], Oracle, &Stats);
        if (!Sec) {
          std::fprintf(stderr, "MISMATCH on %s pool T=%u\n",
                       Spec.Abbrev.c_str(), ThreadCounts[TI]);
          return 1;
        }
        if (Rep == 0 || *Sec < Best)
          Best = *Sec;
      }
      ParSecs[TI] = Best;
      Report.result(Spec.Abbrev + ".pool_t" +
                        std::to_string(ThreadCounts[TI]) + "_s",
                    Best, "s");
      if (ThreadCounts[TI] == 4) {
        T4Sec = Best;
        Report.result(Spec.Abbrev + ".pool_t4_rescan_chunks",
                      static_cast<double>(Stats.RescanFallbackChunks),
                      "chunks");
      }
    }
    double SpeedupT4 = T4Sec > 0 ? SeqSec / T4Sec : 0;
    PoolSpeedupsT4.push_back(SpeedupT4);
    Report.result(Spec.Abbrev + ".pool_speedup_t4", SpeedupT4, "x");
    std::printf("%-8s | %5zu | %9.4f %9.4f %9.4f %9.4f | %6.2fx | %8zu\n",
                Spec.Abbrev.c_str(), Pool.Dfas.size(), SeqSec, ParSecs[0],
                ParSecs[1], ParSecs[2], SpeedupT4, Oracle.size());

    // --- union DFA: collapse-guard stress row (informational) ------------
    {
      uint32_t K = std::min<uint32_t>(
          48, static_cast<uint32_t>(Dataset.OptimizedFsas.size()));
      std::unique_ptr<Dfa> Union;
      for (; K > 0; K /= 2) {
        std::vector<Nfa> Slice(Dataset.OptimizedFsas.begin(),
                               Dataset.OptimizedFsas.begin() + K);
        std::vector<uint32_t> Ids(K);
        for (uint32_t I = 0; I < K; ++I)
          Ids[I] = I;
        Result<Dfa> D = determinize(Slice, Ids);
        if (D.ok()) {
          Union = std::make_unique<Dfa>(D.take());
          break;
        }
      }
      if (Union) {
        MatchRecorder SeqRecorder(MatchRecorder::Mode::Collect);
        Timer UnionWall;
        DfaEngine(*Union).run(Dataset.Stream, SeqRecorder);
        double UnionSeqSec = UnionWall.elapsedSec();
        std::vector<Match> UnionOracle = sortedMatches(SeqRecorder);

        InputParallelOptions Opts;
        Opts.Threads = 4;
        InputParallelRun Par(*Union, Opts);
        MatchRecorder ParRecorder(MatchRecorder::Mode::Collect);
        InputParallelStats Stats;
        Par.run(Dataset.Stream, ParRecorder, &Stats);
        if (sortedMatches(ParRecorder) != UnionOracle) {
          std::fprintf(stderr, "MISMATCH on %s union T=4\n",
                       Spec.Abbrev.c_str());
          return 1;
        }
        Report.result(Spec.Abbrev + ".union_seq_s", UnionSeqSec, "s");
        Report.result(Spec.Abbrev + ".union_t4_s",
                      Stats.modeledWallSeconds(), "s");
        Report.result(Spec.Abbrev + ".union_t4_rescan_chunks",
                      static_cast<double>(Stats.RescanFallbackChunks),
                      "chunks");
      }
    }

    // --- dense iMFAnt: speculation-mix row (informational) ---------------
    std::vector<uint32_t> AllIds(Dataset.OptimizedFsas.size());
    for (uint32_t I = 0; I < AllIds.size(); ++I)
      AllIds[I] = I;
    Mfsa Merged = mergeFsas(Dataset.OptimizedFsas, AllIds);
    ImfantEngine Imfant(Merged);
    WidthBound Width = boundActivationWidth(Merged);

    MatchRecorder SeqRecorder(MatchRecorder::Mode::Collect);
    Timer ImfWall;
    Imfant.run(Dataset.Stream, SeqRecorder);
    double ImfSeqSec = ImfWall.elapsedSec();
    std::vector<Match> ImfOracle = sortedMatches(SeqRecorder);

    InputParallelOptions ImfOpts;
    ImfOpts.Threads = 4;
    ImfOpts.Width = &Width;
    InputParallelRun ImfPar(Imfant, ImfOpts);
    MatchRecorder ImfRecorder(MatchRecorder::Mode::Collect);
    InputParallelStats ImfStats;
    ImfPar.run(Dataset.Stream, ImfRecorder, &ImfStats);
    if (sortedMatches(ImfRecorder) != ImfOracle) {
      std::fprintf(stderr, "MISMATCH on %s imfant T=4\n",
                   Spec.Abbrev.c_str());
      return 1;
    }
    Report.result(Spec.Abbrev + ".imfant_seq_s", ImfSeqSec, "s");
    Report.result(Spec.Abbrev + ".imfant_t4_s",
                  ImfStats.modeledWallSeconds(), "s");
    Report.result(Spec.Abbrev + ".imfant_t4_table_chunks",
                  static_cast<double>(ImfStats.SpecTableChunks), "chunks");
    Report.result(Spec.Abbrev + ".imfant_t4_rescan_chunks",
                  static_cast<double>(ImfStats.RescanFallbackChunks),
                  "chunks");
  }

  double Geomean = geomean(PoolSpeedupsT4);
  Report.result("geomean_pool_speedup_t4", Geomean, "x");
  std::printf("\ngeomean pool T=4 modeled speedup: %.2fx\n", Geomean);

  // --- env-gated large-stream row --------------------------------------
  if (BigBytes > 0 && !standardDatasets().empty()) {
    const DatasetSpec &Spec = standardDatasets().front();
    CompiledDataset Dataset = compileDataset(Spec, 0);
    std::string Big = generateStream(Spec, Dataset.Rules, BigBytes);
    DfaPool Pool = buildPool(Dataset);
    if (!Pool.Dfas.empty()) {
      std::vector<Match> Oracle;
      double SeqSec = timeSequentialPool(Pool, Big, Oracle);
      std::optional<double> T4 = timeParallelPool(Pool, Big, 4, Oracle);
      if (!T4) {
        std::fprintf(stderr, "MISMATCH on big-stream pool T=4\n");
        return 1;
      }
      Report.result("big.pool_seq_s", SeqSec, "s");
      Report.result("big.pool_t4_s", *T4, "s");
      Report.result("big.pool_speedup_t4", *T4 > 0 ? SeqSec / *T4 : 0, "x");
      std::printf("big stream (%zu bytes): seq %.3fs, t4 %.3fs (%.2fx)\n",
                  BigBytes, SeqSec, *T4, *T4 > 0 ? SeqSec / *T4 : 0);
    }
  }

  std::printf("\nexpected shape: per-rule DFA state maps collapse to one "
              "class within bytes of each cut, the fast path scans the rest "
              "at sequential cost, and the modeled T=4 wall approaches "
              "seq/4; union/iMFAnt rows show the fallback mix\n");
  // Nonzero is reserved for correctness divergence; CI gates the speedup
  // across rounds (one noisy round must not fail a job another round
  // passes).
  return 0;
}
