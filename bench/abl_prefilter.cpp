//===- abl_prefilter.cpp - ablation H (Hyperscan-style decomposition) --------===//
//
// Part of the mfsa project. MIT License.
//
// The paper's §I positions MFSAs against the decomposition approach of
// Hyperscan [Wang et al.]: "split complex patterns into disjoint sets of
// string and FSA components ... delaying FSA execution until the string
// matching analysis is required". This bench runs our literal-prefilter
// implementation (Aho-Corasick gate + windowed confirmation + MFSA residual,
// engine/Prefilter.h) against the plain M = all iMFAnt scan, reporting the
// prefilterable-rule fraction and the throughput on planted streams.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "engine/Prefilter.h"
#include "support/Timer.h"

using namespace mfsa;
using namespace mfsa::bench;

int main() {
  printHeader("Ablation H - literal prefiltering vs plain MFSA scan",
              "§I decomposition baseline (Hyperscan-style)");
  BenchReport Report("abl_prefilter",
                     "§I decomposition baseline (Hyperscan-style)");

  const unsigned Reps = repetitions();
  std::printf("%-8s %8s %8s | %10s %10s %8s | %10s\n", "dataset", "prefilt",
              "resid", "mfsa[s]", "prefil[s]", "ratio", "matches");
  for (const DatasetSpec &Spec : standardDatasets()) {
    CompiledDataset Dataset = compileDataset(Spec, streamBytes());

    std::vector<ImfantEngine> MfsaEngines = buildEngines(Dataset, 0);
    Result<PrefilterEngine> Prefilter =
        PrefilterEngine::create(Dataset.Rules);
    if (!Prefilter.ok()) {
      std::fprintf(stderr, "fatal: %s\n", Prefilter.diag().render().c_str());
      return 1;
    }
    Prefilter->setMetrics(&Report.registry());

    double MfsaSec = 0, PrefilterSec = 0;
    uint64_t MfsaMatches = 0, PrefilterMatches = 0;
    for (unsigned Rep = 0; Rep < Reps; ++Rep) {
      {
        Timer Wall;
        MatchRecorder Recorder;
        MfsaEngines[0].run(Dataset.Stream, Recorder);
        double Sec = Wall.elapsedSec();
        if (Rep == 0 || Sec < MfsaSec)
          MfsaSec = Sec;
        MfsaMatches = Recorder.total();
      }
      {
        Timer Wall;
        MatchRecorder Recorder;
        Prefilter->run(Dataset.Stream, Recorder);
        double Sec = Wall.elapsedSec();
        if (Rep == 0 || Sec < PrefilterSec)
          PrefilterSec = Sec;
        PrefilterMatches = Recorder.total();
      }
    }

    if (MfsaMatches != PrefilterMatches) {
      std::fprintf(stderr, "MISMATCH on %s: %lu vs %lu matches\n",
                   Spec.Abbrev.c_str(),
                   static_cast<unsigned long>(MfsaMatches),
                   static_cast<unsigned long>(PrefilterMatches));
      return 1;
    }
    std::printf("%-8s %8zu %8zu | %10.3f %10.3f %7.2fx | %10lu\n",
                Spec.Abbrev.c_str(), Prefilter->numPrefiltered(),
                Prefilter->numResidual(), MfsaSec, PrefilterSec,
                MfsaSec / PrefilterSec,
                static_cast<unsigned long>(MfsaMatches));
    Report.result(Spec.Abbrev + ".prefiltered_rules",
                  static_cast<double>(Prefilter->numPrefiltered()), "rules");
    Report.result(Spec.Abbrev + ".mfsa_time_s", MfsaSec, "s");
    Report.result(Spec.Abbrev + ".prefilter_time_s", PrefilterSec, "s");
    Report.result(Spec.Abbrev + ".speedup", MfsaSec / PrefilterSec, "x");
  }
  std::printf("\nexpected shape: literal-rich, bounded rulesets (BRO, TCP, "
              "PEN) prefilter most of their rules and win when literal hits "
              "are rare; CC-dominated (PRO) and .*-glued (DS9) rulesets "
              "keep large residuals where the MFSA does the work anyway\n");
  return 0;
}
