//===- fig8_compile_time.cpp - reproduce Fig. 8 (compilation stages) ---------===//
//
// Part of the mfsa project. MIT License.
//
// Paper Fig. 8: per-stage compilation time (front-end, AST-to-FSA,
// ME-single, ME-merging, back-end) for representative merging factors,
// averaged over repetitions. The paper's observations to reproduce: the
// single-FSA stages are independent of M; the merging stage dominates and
// grows with M.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mfsa;
using namespace mfsa::bench;

int main() {
  printHeader("Fig. 8 - compilation stage breakdown",
              "Fig. 8 (per-stage time vs merging factor)");
  BenchReport Report("fig8_compile_time",
                     "Fig. 8 (per-stage time vs merging factor)");

  const unsigned Reps = repetitions();
  std::vector<uint32_t> Factors = {1, 2, 10, 50, 0};

  std::printf("%-8s %6s %10s %10s %10s %10s %10s %10s\n", "dataset", "M",
              "FE[ms]", "AST2FSA", "ME-single", "ME-merge", "BE[ms]",
              "total");
  for (const DatasetSpec &Spec : standardDatasets()) {
    std::vector<std::string> Rules = generateRuleset(Spec);
    for (uint32_t M : Factors) {
      StageTimes Sum;
      for (unsigned Rep = 0; Rep < Reps; ++Rep) {
        CompileOptions Options;
        Options.MergingFactor = M;
        Result<CompileArtifacts> Artifacts = compileRuleset(Rules, Options);
        if (!Artifacts.ok()) {
          std::fprintf(stderr, "fatal: %s\n",
                       Artifacts.diag().render().c_str());
          return 1;
        }
        Sum += Artifacts->Times;
        // The last repetition's per-stage telemetry lands in the registry
        // (counters, not timings, so repetitions would double-count them).
        if (Rep + 1 == Reps && M == 0)
          Artifacts->Telemetry.recordTo(Report.registry());
      }
      StageTimes Avg = Sum.scaledBy(1.0 / Reps);
      std::printf("%-8s %6s %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f\n",
                  Spec.Abbrev.c_str(), mergingFactorName(M).c_str(),
                  Avg.FrontEndMs, Avg.AstToFsaMs, Avg.SingleOptMs,
                  Avg.MergingMs, Avg.BackEndMs, Avg.totalMs());
      Report.result(Spec.Abbrev + ".m_" + mergingFactorName(M) + ".total_ms",
                    Avg.totalMs(), "ms");
      Report.result(Spec.Abbrev + ".m_" + mergingFactorName(M) +
                        ".merging_ms",
                    Avg.MergingMs, "ms");
    }
  }
  std::printf("\nexpected shape: FE / AST-to-FSA / ME-single roughly constant "
              "in M; ME-merging grows with M and dominates at M=all\n");
  return 0;
}
