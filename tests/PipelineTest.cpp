//===- PipelineTest.cpp - tests for the compilation framework ----------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"

#include "anml/Anml.h"
#include "engine/Imfant.h"
#include "fsa/Reference.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>

using namespace mfsa;
using namespace mfsa::test;

TEST(Pipeline, ProducesAllStageArtifacts) {
  std::vector<std::string> Patterns = {"abc", "ab[cd]", "a.*z", "x{2,4}y"};
  CompileOptions Options;
  Options.MergingFactor = 2;
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns, Options);
  ASSERT_TRUE(Artifacts.ok());
  EXPECT_EQ(Artifacts->Asts.size(), 4u);
  EXPECT_EQ(Artifacts->RawFsas.size(), 4u);
  EXPECT_EQ(Artifacts->OptimizedFsas.size(), 4u);
  EXPECT_EQ(Artifacts->Mfsas.size(), 2u); // ceil(4/2)
  EXPECT_EQ(Artifacts->AnmlDocs.size(), 2u);
  for (const Nfa &A : Artifacts->OptimizedFsas)
    EXPECT_FALSE(A.hasEpsilons());
  for (const Mfsa &Z : Artifacts->Mfsas)
    EXPECT_EQ(Z.verify(), "");
  // Stage times are populated (>= 0 and total consistent).
  EXPECT_GE(Artifacts->Times.totalMs(), 0.0);
}

TEST(Pipeline, MergingFactorZeroYieldsOneMfsa) {
  std::vector<std::string> Patterns = {"aa", "bb", "cc", "dd", "ee"};
  CompileOptions Options;
  Options.MergingFactor = 0;
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns, Options);
  ASSERT_TRUE(Artifacts.ok());
  ASSERT_EQ(Artifacts->Mfsas.size(), 1u);
  EXPECT_EQ(Artifacts->Mfsas[0].numRules(), 5u);
}

TEST(Pipeline, ReportsRuleIndexOnParseError) {
  std::vector<std::string> Patterns = {"ok", "als(o", "fine"};
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns);
  ASSERT_FALSE(Artifacts.ok());
  EXPECT_NE(Artifacts.diag().Message.find("rule 1"), std::string::npos);
}

TEST(Pipeline, ReportsRuleIndexOnBuildError) {
  CompileOptions Options;
  Options.Build.MaxRepeatBound = 4;
  std::vector<std::string> Patterns = {"ok", "a{9}"};
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns, Options);
  ASSERT_FALSE(Artifacts.ok());
  EXPECT_NE(Artifacts.diag().Message.find("rule 1"), std::string::npos);
}

TEST(Pipeline, AnmlCanBeSkipped) {
  CompileOptions Options;
  Options.EmitAnml = false;
  Result<CompileArtifacts> Artifacts = compileRuleset({"ab"}, Options);
  ASSERT_TRUE(Artifacts.ok());
  EXPECT_TRUE(Artifacts->AnmlDocs.empty());
  EXPECT_EQ(Artifacts->Times.BackEndMs, 0.0);
}

TEST(Pipeline, AnmlDocsRoundTripToWorkingEngines) {
  std::vector<std::string> Patterns = {"foo[0-9]+", "foobar", "barfoo"};
  CompileOptions Options;
  Options.MergingFactor = 0;
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns, Options);
  ASSERT_TRUE(Artifacts.ok());
  Result<Mfsa> Z = readAnml(Artifacts->AnmlDocs[0]);
  ASSERT_TRUE(Z.ok());
  ImfantEngine Engine(*Z);
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  Engine.run("xfoobarfoo42", Recorder);
  // foobar ends at 7; barfoo ends at 10; foo42... foo[0-9]+ ends at 11, 12.
  EXPECT_EQ(Recorder.total(), 4u);
}

//===----------------------------------------------------------------------===//
// Fault isolation: FailurePolicy::Isolate, budgets, quarantine semantics
//===----------------------------------------------------------------------===//

namespace {

/// Runs every compiled MFSA and returns global-id -> match-end offsets.
std::map<uint32_t, std::set<size_t>> runAll(const CompileArtifacts &Artifacts,
                                            const std::string &Input) {
  std::map<uint32_t, std::set<size_t>> Got;
  for (const Mfsa &Z : Artifacts.Mfsas) {
    ImfantEngine Engine(Z);
    MatchRecorder Recorder(MatchRecorder::Mode::Collect);
    Engine.run(Input, Recorder);
    for (auto &[Rule, End] : Recorder.matches())
      Got[Rule].insert(static_cast<size_t>(End));
  }
  return Got;
}

} // namespace

TEST(Pipeline, IsolateQuarantinesMalformedAndBudgetBusting) {
  // Rule 1 is malformed; rule 2 is an expansion bomb (600*600 = 360k states,
  // far past the 4096-states-per-pattern-byte growth cap); 0 and 3 are fine.
  std::vector<std::string> Patterns = {"foo[a-c]+", "bad[", "a{600}{600}",
                                       "barbaz"};
  CompileOptions Options;
  Options.Policy = FailurePolicy::Isolate;
  Options.MergingFactor = 0;
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns, Options);
  ASSERT_TRUE(Artifacts.ok());

  ASSERT_EQ(Artifacts->Quarantined.size(), 2u);
  EXPECT_EQ(Artifacts->Quarantined[0].RuleIndex, 1u);
  EXPECT_EQ(Artifacts->Quarantined[0].Stage, CompileStage::FrontEnd);
  EXPECT_EQ(Artifacts->Quarantined[1].RuleIndex, 2u);
  EXPECT_EQ(Artifacts->Quarantined[1].Stage, CompileStage::AstToFsa);
  EXPECT_NE(Artifacts->Quarantined[1].Reason.Message.find("budget"),
            std::string::npos);

  EXPECT_EQ(Artifacts->CompiledRuleIds, (std::vector<uint32_t>{0, 3}));
  EXPECT_EQ(Artifacts->Asts.size(), 2u);
  EXPECT_EQ(Artifacts->OptimizedFsas.size(), 2u);
  ASSERT_EQ(Artifacts->Mfsas.size(), 1u);

  // Matches and bel reports must reference *original* rule indices: the
  // engine reports ids 0 and 3, exactly matching the brute-force oracle.
  std::string Input = "xfooab barbaz fooccc";
  std::map<uint32_t, std::set<size_t>> Expected;
  for (uint32_t Id : Artifacts->CompiledRuleIds) {
    Result<Regex> Re = parseRegex(Patterns[Id]);
    ASSERT_TRUE(Re.ok());
    std::set<size_t> Ends = astMatchEnds(*Re, Input);
    if (!Ends.empty())
      Expected[Id] = Ends;
  }
  EXPECT_EQ(runAll(*Artifacts, Input), Expected);
}

TEST(Pipeline, StrictModeStillFailsFast) {
  std::vector<std::string> Patterns = {"good", "bad[", "a{600}{600}"};
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns);
  ASSERT_FALSE(Artifacts.ok());
  EXPECT_NE(Artifacts.diag().Message.find("rule 1"), std::string::npos);
}

TEST(Pipeline, StrictModeFailsOnBudgetOverrun) {
  // With the malformed rule absent, Strict must fail on the expansion bomb
  // with the budget diagnostic (the historical pipeline would have tried to
  // build 360k states instead).
  std::vector<std::string> Patterns = {"good", "a{600}{600}"};
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns);
  ASSERT_FALSE(Artifacts.ok());
  EXPECT_NE(Artifacts.diag().Message.find("rule 1"), std::string::npos);
  EXPECT_NE(Artifacts.diag().Message.find("budget"), std::string::npos);
}

TEST(Pipeline, IsolateMergeBudgetQuarantinesOffenderOnly) {
  // Two healthy rules whose merged MFSA cannot fit the cap: the merge keeps
  // the first and quarantines the one whose incorporation overran, then
  // re-merges the remainder of the group.
  std::vector<std::string> Patterns = {"abcdefgh", "ijklmnopqr"};
  CompileOptions Options;
  Options.Policy = FailurePolicy::Isolate;
  Options.MergingFactor = 0;
  Options.Budget.MaxMergedStates = 10; // rule 0 alone has 9 states
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns, Options);
  ASSERT_TRUE(Artifacts.ok());

  ASSERT_EQ(Artifacts->Quarantined.size(), 1u);
  EXPECT_EQ(Artifacts->Quarantined[0].RuleIndex, 1u);
  EXPECT_EQ(Artifacts->Quarantined[0].Stage, CompileStage::Merging);
  EXPECT_EQ(Artifacts->CompiledRuleIds, (std::vector<uint32_t>{0}));
  ASSERT_EQ(Artifacts->Mfsas.size(), 1u);
  EXPECT_EQ(Artifacts->Mfsas[0].numRules(), 1u);
  EXPECT_EQ(Artifacts->Mfsas[0].rule(0).GlobalId, 0u);

  // Strict mode refuses the same batch outright.
  Options.Policy = FailurePolicy::Strict;
  Result<CompileArtifacts> StrictRun = compileRuleset(Patterns, Options);
  ASSERT_FALSE(StrictRun.ok());
  EXPECT_NE(StrictRun.diag().Message.find("merge budget"), std::string::npos);
}

TEST(Pipeline, StageDeadlineDegradesInsteadOfLivelocking) {
  // A deadline far below one rule's cost: the progress guarantee still
  // compiles the first rule of each stage, the rest are quarantined with a
  // deadline diagnostic.
  std::vector<std::string> Patterns = {"aa", "bb", "cc", "dd"};
  CompileOptions Options;
  Options.Policy = FailurePolicy::Isolate;
  Options.Budget.StageDeadlineMs = 1e-9;
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns, Options);
  ASSERT_TRUE(Artifacts.ok());
  EXPECT_EQ(Artifacts->CompiledRuleIds, (std::vector<uint32_t>{0}));
  ASSERT_EQ(Artifacts->Quarantined.size(), 3u);
  for (const QuarantinedRule &Q : Artifacts->Quarantined) {
    EXPECT_EQ(Q.Stage, CompileStage::FrontEnd);
    EXPECT_NE(Q.Reason.Message.find("deadline"), std::string::npos);
  }
  ASSERT_EQ(Artifacts->Mfsas.size(), 1u);
  EXPECT_EQ(Artifacts->Mfsas[0].numRules(), 1u);
}

TEST(Pipeline, FaultInjectionHookQuarantinesExactRule) {
  std::vector<std::string> Patterns = {"aa", "bb", "cc"};
  CompileOptions Options;
  Options.Policy = FailurePolicy::Isolate;
  Options.MergingFactor = 0;

  struct Case {
    const char *Spec;
    CompileStage Stage;
  };
  for (const Case &C : {Case{"parse:1", CompileStage::FrontEnd},
                        Case{"build:1", CompileStage::AstToFsa},
                        Case{"opt:1", CompileStage::SingleOpt},
                        Case{"merge:1", CompileStage::Merging}}) {
    ASSERT_EQ(setenv("MFSA_FAULT_STAGE", C.Spec, 1), 0);
    Result<CompileArtifacts> Artifacts = compileRuleset(Patterns, Options);
    unsetenv("MFSA_FAULT_STAGE");
    ASSERT_TRUE(Artifacts.ok()) << C.Spec;
    ASSERT_EQ(Artifacts->Quarantined.size(), 1u) << C.Spec;
    EXPECT_EQ(Artifacts->Quarantined[0].RuleIndex, 1u) << C.Spec;
    EXPECT_EQ(Artifacts->Quarantined[0].Stage, C.Stage) << C.Spec;
    EXPECT_NE(Artifacts->Quarantined[0].Reason.Message.find("injected fault"),
              std::string::npos)
        << C.Spec;
    EXPECT_EQ(Artifacts->CompiledRuleIds, (std::vector<uint32_t>{0, 2}))
        << C.Spec;
    ASSERT_EQ(Artifacts->Mfsas.size(), 1u) << C.Spec;
    EXPECT_EQ(Artifacts->Mfsas[0].rule(0).GlobalId, 0u) << C.Spec;
    EXPECT_EQ(Artifacts->Mfsas[0].rule(1).GlobalId, 2u) << C.Spec;
  }

  // Strict mode turns the same injection into a batch failure.
  ASSERT_EQ(setenv("MFSA_FAULT_STAGE", "build:2", 1), 0);
  Result<CompileArtifacts> StrictRun = compileRuleset(Patterns);
  unsetenv("MFSA_FAULT_STAGE");
  ASSERT_FALSE(StrictRun.ok());
  EXPECT_NE(StrictRun.diag().Message.find("rule 2"), std::string::npos);
  EXPECT_NE(StrictRun.diag().Message.find("injected fault"),
            std::string::npos);
}

TEST(Pipeline, IsolateWithAllRulesHealthyMatchesStrict) {
  std::vector<std::string> Patterns = {"abc", "ab[cd]", "a.*z", "x{2,4}y"};
  CompileOptions Options;
  Options.MergingFactor = 2;
  Options.Policy = FailurePolicy::Isolate;
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns, Options);
  ASSERT_TRUE(Artifacts.ok());
  EXPECT_TRUE(Artifacts->Quarantined.empty());
  EXPECT_EQ(Artifacts->CompiledRuleIds, (std::vector<uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(Artifacts->Mfsas.size(), 2u);
}

TEST(Pipeline, EndToEndMatchesOracle) {
  std::vector<std::string> Patterns = {"(get|post)/[a-z]+", "get/index",
                                       "^host:", "cookie=[a-f0-9]{4}"};
  CompileOptions Options;
  Options.MergingFactor = 0;
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns, Options);
  ASSERT_TRUE(Artifacts.ok());
  ImfantEngine Engine(Artifacts->Mfsas[0]);

  std::string Input = "host:get/indexcookie=beef00post/data";
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  Engine.run(Input, Recorder);
  std::map<uint32_t, std::set<size_t>> Got;
  for (auto &[Rule, End] : Recorder.matches())
    Got[Rule].insert(static_cast<size_t>(End));

  std::map<uint32_t, std::set<size_t>> Expected;
  for (size_t I = 0; I < Patterns.size(); ++I) {
    Result<Regex> Re = parseRegex(Patterns[I]);
    ASSERT_TRUE(Re.ok());
    std::set<size_t> Ends = astMatchEnds(*Re, Input);
    if (!Ends.empty())
      Expected[static_cast<uint32_t>(I)] = Ends;
  }
  EXPECT_EQ(Got, Expected);
}
