//===- PipelineTest.cpp - tests for the compilation framework ----------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"

#include "anml/Anml.h"
#include "engine/Imfant.h"
#include "fsa/Reference.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace mfsa;
using namespace mfsa::test;

TEST(Pipeline, ProducesAllStageArtifacts) {
  std::vector<std::string> Patterns = {"abc", "ab[cd]", "a.*z", "x{2,4}y"};
  CompileOptions Options;
  Options.MergingFactor = 2;
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns, Options);
  ASSERT_TRUE(Artifacts.ok());
  EXPECT_EQ(Artifacts->Asts.size(), 4u);
  EXPECT_EQ(Artifacts->RawFsas.size(), 4u);
  EXPECT_EQ(Artifacts->OptimizedFsas.size(), 4u);
  EXPECT_EQ(Artifacts->Mfsas.size(), 2u); // ceil(4/2)
  EXPECT_EQ(Artifacts->AnmlDocs.size(), 2u);
  for (const Nfa &A : Artifacts->OptimizedFsas)
    EXPECT_FALSE(A.hasEpsilons());
  for (const Mfsa &Z : Artifacts->Mfsas)
    EXPECT_EQ(Z.verify(), "");
  // Stage times are populated (>= 0 and total consistent).
  EXPECT_GE(Artifacts->Times.totalMs(), 0.0);
}

TEST(Pipeline, MergingFactorZeroYieldsOneMfsa) {
  std::vector<std::string> Patterns = {"aa", "bb", "cc", "dd", "ee"};
  CompileOptions Options;
  Options.MergingFactor = 0;
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns, Options);
  ASSERT_TRUE(Artifacts.ok());
  ASSERT_EQ(Artifacts->Mfsas.size(), 1u);
  EXPECT_EQ(Artifacts->Mfsas[0].numRules(), 5u);
}

TEST(Pipeline, ReportsRuleIndexOnParseError) {
  std::vector<std::string> Patterns = {"ok", "als(o", "fine"};
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns);
  ASSERT_FALSE(Artifacts.ok());
  EXPECT_NE(Artifacts.diag().Message.find("rule 1"), std::string::npos);
}

TEST(Pipeline, ReportsRuleIndexOnBuildError) {
  CompileOptions Options;
  Options.Build.MaxRepeatBound = 4;
  std::vector<std::string> Patterns = {"ok", "a{9}"};
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns, Options);
  ASSERT_FALSE(Artifacts.ok());
  EXPECT_NE(Artifacts.diag().Message.find("rule 1"), std::string::npos);
}

TEST(Pipeline, AnmlCanBeSkipped) {
  CompileOptions Options;
  Options.EmitAnml = false;
  Result<CompileArtifacts> Artifacts = compileRuleset({"ab"}, Options);
  ASSERT_TRUE(Artifacts.ok());
  EXPECT_TRUE(Artifacts->AnmlDocs.empty());
  EXPECT_EQ(Artifacts->Times.BackEndMs, 0.0);
}

TEST(Pipeline, AnmlDocsRoundTripToWorkingEngines) {
  std::vector<std::string> Patterns = {"foo[0-9]+", "foobar", "barfoo"};
  CompileOptions Options;
  Options.MergingFactor = 0;
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns, Options);
  ASSERT_TRUE(Artifacts.ok());
  Result<Mfsa> Z = readAnml(Artifacts->AnmlDocs[0]);
  ASSERT_TRUE(Z.ok());
  ImfantEngine Engine(*Z);
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  Engine.run("xfoobarfoo42", Recorder);
  // foobar ends at 7; barfoo ends at 10; foo42... foo[0-9]+ ends at 11, 12.
  EXPECT_EQ(Recorder.total(), 4u);
}

TEST(Pipeline, EndToEndMatchesOracle) {
  std::vector<std::string> Patterns = {"(get|post)/[a-z]+", "get/index",
                                       "^host:", "cookie=[a-f0-9]{4}"};
  CompileOptions Options;
  Options.MergingFactor = 0;
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns, Options);
  ASSERT_TRUE(Artifacts.ok());
  ImfantEngine Engine(Artifacts->Mfsas[0]);

  std::string Input = "host:get/indexcookie=beef00post/data";
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  Engine.run(Input, Recorder);
  std::map<uint32_t, std::set<size_t>> Got;
  for (auto &[Rule, End] : Recorder.matches())
    Got[Rule].insert(static_cast<size_t>(End));

  std::map<uint32_t, std::set<size_t>> Expected;
  for (size_t I = 0; I < Patterns.size(); ++I) {
    Result<Regex> Re = parseRegex(Patterns[I]);
    ASSERT_TRUE(Re.ok());
    std::set<size_t> Ends = astMatchEnds(*Re, Input);
    if (!Ends.empty())
      Expected[static_cast<uint32_t>(I)] = Ends;
  }
  EXPECT_EQ(Got, Expected);
}
