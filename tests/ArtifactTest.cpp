//===- ArtifactTest.cpp - artifact round-trip and corruption hardening --------===//
//
// Part of the mfsa project. MIT License.
//
// Exercises the compiled-MFSA artifact subsystem end to end: byte-exact
// round trips through serialize -> write -> mmap -> validate -> materialize,
// cross-engine differential equivalence of artifact-built engines against
// in-memory compiles at every SIMD dispatch level, and — the robustness
// headline — a battery of corrupted images (truncations, bit flips, section
// offset swaps, checksum-fixed structural mutants) that must every one be
// rejected with a one-line diagnostic, never a crash, with the fallback
// recompile path keeping the ruleset serviceable throughout.
//
// Mutants come in two tiers on purpose: raw mutations prove the checksum
// layers catch accidental corruption; mutations followed by fixChecksums()
// (recomputing every CRC the way a deliberate attacker could) prove the
// structural validation ladder stands on its own underneath the checksums.
//
//===----------------------------------------------------------------------===//

#include "artifact/Format.h"
#include "artifact/Reader.h"
#include "artifact/Writer.h"
#include "compiler/Pipeline.h"
#include "engine/DfaEngine.h"
#include "engine/Imfant.h"
#include "engine/MultiStride.h"
#include "engine/Prefilter.h"
#include "engine/SparseImfant.h"
#include "fsa/Determinize.h"
#include "obs/Metrics.h"
#include "support/Checksum.h"
#include "support/Endian.h"
#include "support/SimdDispatch.h"
#include "workload/Datasets.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

using namespace mfsa;
using namespace mfsa::artifact;
using namespace mfsa::test;

namespace {

using RuleEnds = std::map<uint32_t, std::set<size_t>>;

/// A per-test temp directory under TMPDIR, removed on destruction.
class TempDir {
public:
  TempDir() {
    const char *Base = std::getenv("TMPDIR");
    std::string Template =
        std::string(Base ? Base : "/tmp") + "/mfsa-artifact-XXXXXX";
    std::vector<char> Buf(Template.begin(), Template.end());
    Buf.push_back('\0');
    const char *Made = mkdtemp(Buf.data());
    EXPECT_NE(Made, nullptr);
    Path = Made ? Made : "";
  }
  ~TempDir() {
    if (Path.empty())
      return;
    // Only this suite's files land here; remove them then the directory.
    if (DIR *D = opendir(Path.c_str())) {
      while (struct dirent *E = readdir(D)) {
        const std::string Name = E->d_name;
        if (Name != "." && Name != "..")
          ::unlink((Path + "/" + Name).c_str());
      }
      closedir(D);
    }
    ::rmdir(Path.c_str());
  }
  std::string file(const std::string &Name) const { return Path + "/" + Name; }

private:
  std::string Path;
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

/// Recomputes every checksum of a (possibly mutated) image in place: each
/// section CRC from its current payload, then the file CRC, then the header
/// CRC. This is exactly what a deliberate tamperer could do, so anything
/// that fixChecksums cannot hide must be caught by structural validation.
void fixChecksums(std::string &Image) {
  ASSERT_GE(Image.size(), kHeaderBytes);
  uint8_t *D = reinterpret_cast<uint8_t *>(Image.data());
  const uint32_t NumSections = loadLE32(D + 36);
  for (uint32_t I = 0; I < NumSections; ++I) {
    uint8_t *E = D + kHeaderBytes + uint64_t(I) * kSectionEntryBytes;
    if (E + kSectionEntryBytes > D + Image.size())
      break;
    const uint64_t Offset = loadLE64(E + 8);
    const uint64_t Bytes = loadLE64(E + 16);
    if (Offset <= Image.size() && Bytes <= Image.size() - Offset)
      storeLE32(E + 32, crc32c(D + Offset, Bytes));
  }
  storeLE32(D + 56, crc32c(D + kHeaderBytes, Image.size() - kHeaderBytes));
  storeLE32(D + 60, 0);
  storeLE32(D + 60, crc32c(D, kHeaderBytes));
}

/// Per-global-rule match ends of \p Input under every MFSA of \p Mfsas,
/// merged (engines report GlobalIds, so the union is well-defined).
RuleEnds imfantEnds(const std::vector<Mfsa> &Mfsas, const std::string &Input) {
  RuleEnds All;
  for (const Mfsa &Z : Mfsas) {
    ImfantEngine Engine(Z);
    MatchRecorder Recorder(MatchRecorder::Mode::Collect);
    Engine.run(Input, Recorder);
    for (const auto &[Rule, End] : Recorder.matches())
      All[Rule].insert(static_cast<size_t>(End));
  }
  return All;
}

/// Compiles, emits, and reloads \p Patterns; fails the test on any step.
/// \returns the loaded artifact (engine views stay valid while it lives).
Result<LoadedArtifact> roundTrip(const TempDir &Dir,
                                 const std::vector<std::string> &Patterns,
                                 uint32_t MergingFactor = 0,
                                 const LoadOptions &Load = {},
                                 obs::MetricsRegistry *Metrics = nullptr) {
  CompileOptions Options;
  Options.MergingFactor = MergingFactor;
  Options.EmitAnml = false;
  Result<CompileArtifacts> Compiled = compileRuleset(Patterns, Options);
  EXPECT_TRUE(Compiled.ok()) << formatPatterns(Patterns);
  if (!Compiled.ok())
    return Result<LoadedArtifact>::error("compile failed");
  ArtifactWriteOptions Write;
  Write.MergingFactor = MergingFactor;
  const std::string Path = Dir.file("roundtrip.mfsa");
  Result<uint64_t> Written =
      writeArtifactFile(Path, Compiled->Mfsas, Patterns, Write);
  EXPECT_TRUE(Written.ok()) << (Written.ok() ? "" : Written.diag().render());
  return loadArtifact(Path, Load, Metrics);
}

//===--------------------------------------------------------------------===//
// Round trip: the loaded image IS the compiled automaton.
//===--------------------------------------------------------------------===//

const std::vector<std::string> kSmallRuleset = {
    "abc",       "a[bc]+d",   "(ab|cd)e*f", "x{2,4}y",
    "^anchored", "suffix$",   "lit(eral)?", "[a-d]{3}z",
};

TEST(ArtifactRoundTrip, MaterializedMfsasMatchCompiledOnes) {
  TempDir Dir;
  CompileOptions Options;
  Options.MergingFactor = 3; // several MFSAs, exercises per-MFSA sections
  Options.EmitAnml = false;
  Result<CompileArtifacts> Compiled = compileRuleset(kSmallRuleset, Options);
  ASSERT_TRUE(Compiled.ok());

  const std::string Path = Dir.file("rt.mfsa");
  ArtifactWriteOptions Write;
  Write.MergingFactor = 3;
  Result<uint64_t> Written =
      writeArtifactFile(Path, Compiled->Mfsas, kSmallRuleset, Write);
  ASSERT_TRUE(Written.ok()) << Written.diag().render();

  struct stat St;
  ASSERT_EQ(::stat(Path.c_str(), &St), 0);
  EXPECT_EQ(static_cast<uint64_t>(St.st_size), *Written);
  EXPECT_EQ(*Written % kPageBytes, 0u) << "image must be page-padded";

  Result<LoadedArtifact> Loaded = loadArtifact(Path);
  ASSERT_TRUE(Loaded.ok()) << Loaded.diag().render();
  EXPECT_EQ(Loaded->header().MergingFactor, 3u);
  EXPECT_EQ(Loaded->patterns(), kSmallRuleset);
  ASSERT_EQ(Loaded->numMfsas(), Compiled->Mfsas.size());

  std::vector<Mfsa> Restored = Loaded->materializeAll();
  for (size_t I = 0; I < Restored.size(); ++I) {
    const Mfsa &Want = Compiled->Mfsas[I];
    const Mfsa &Got = Restored[I];
    EXPECT_EQ(Got.numStates(), Want.numStates()) << "mfsa " << I;
    EXPECT_EQ(Got.numRules(), Want.numRules()) << "mfsa " << I;
    EXPECT_EQ(Got.numTransitions(), Want.numTransitions()) << "mfsa " << I;
    EXPECT_EQ(Got.verify(), "") << "mfsa " << I;
    for (RuleId R = 0; R < Want.numRules(); ++R) {
      EXPECT_EQ(Got.rule(R).GlobalId, Want.rule(R).GlobalId);
      EXPECT_EQ(Got.rule(R).Initial, Want.rule(R).Initial);
      EXPECT_EQ(Got.rule(R).Finals, Want.rule(R).Finals);
      EXPECT_EQ(Got.rule(R).AnchoredStart, Want.rule(R).AnchoredStart);
      EXPECT_EQ(Got.rule(R).AnchoredEnd, Want.rule(R).AnchoredEnd);
    }
  }
}

TEST(ArtifactRoundTrip, SerializationIsByteStable) {
  CompileOptions Options;
  Options.EmitAnml = false;
  Result<CompileArtifacts> Compiled = compileRuleset(kSmallRuleset, Options);
  ASSERT_TRUE(Compiled.ok());
  Result<std::string> A = serializeArtifact(Compiled->Mfsas, kSmallRuleset);
  Result<std::string> B = serializeArtifact(Compiled->Mfsas, kSmallRuleset);
  ASSERT_TRUE(A.ok() && B.ok());
  EXPECT_EQ(*A, *B) << "same input must serialize to identical bytes";
}

//===--------------------------------------------------------------------===//
// Differential: all five engines built from the artifact agree with the
// AST oracle at every SIMD dispatch level.
//===--------------------------------------------------------------------===//

struct SimdLevelGuard {
  ~SimdLevelGuard() { simd::resetToEnv(); }
};

TEST(ArtifactDifferential, FiveEnginesFromArtifactMatchOracle) {
  TempDir Dir;
  const std::vector<std::string> Patterns = {"ab+c", "(a|b)c", "cab{1,3}",
                                             "[ab]cd", "d+e"};
  Result<LoadedArtifact> Loaded = roundTrip(Dir, Patterns);
  ASSERT_TRUE(Loaded.ok()) << Loaded.diag().render();

  std::vector<Mfsa> Mfsas = Loaded->materializeAll();

  // DFA family: per-rule NFAs extracted back out of the artifact MFSAs.
  std::vector<Nfa> Fsas;
  std::vector<uint32_t> Ids;
  for (const Mfsa &Z : Mfsas)
    for (RuleId R = 0; R < Z.numRules(); ++R) {
      Fsas.push_back(Z.extractRule(R));
      Ids.push_back(Z.rule(R).GlobalId);
    }
  Result<Dfa> UnionDfa = determinize(Fsas, Ids);
  ASSERT_TRUE(UnionDfa.ok()) << UnionDfa.diag().render();
  Result<StridedDfa> Stride2 = makeStride2(*UnionDfa);
  ASSERT_TRUE(Stride2.ok()) << Stride2.diag().render();

  // Prefilter from the embedded pattern text.
  Result<PrefilterEngine> Prefilter =
      PrefilterEngine::create(Loaded->patterns());
  ASSERT_TRUE(Prefilter.ok());

  Rng Random(20260808);
  std::vector<std::string> Inputs = {"", "abcabc"};
  for (int Trial = 0; Trial < 3; ++Trial)
    Inputs.push_back(randomInput(Random, 48 + Random.nextBelow(48)));

  SimdLevelGuard Guard;
  for (const std::string &Input : Inputs) {
    RuleEnds Expected = oracleRuleEnds(Patterns, Input);
    for (simd::Level Lvl : simd::availableLevels()) {
      ASSERT_TRUE(simd::setLevel(Lvl));
      const std::string Tag =
          "input=\"" + Input + "\" simd=" + simd::levelName(Lvl);

      EXPECT_EQ(imfantEnds(Mfsas, Input), Expected) << "engine=imfant " << Tag;
      {
        RuleEnds All;
        for (const Mfsa &Z : Mfsas) {
          SparseImfantEngine Engine(Z);
          MatchRecorder Recorder(MatchRecorder::Mode::Collect);
          Engine.run(Input, Recorder);
          for (const auto &[Rule, End] : Recorder.matches())
            All[Rule].insert(static_cast<size_t>(End));
        }
        EXPECT_EQ(All, Expected) << "engine=sparse " << Tag;
      }
      {
        DfaEngine Engine(*UnionDfa);
        MatchRecorder Recorder(MatchRecorder::Mode::Collect);
        Engine.run(Input, Recorder);
        EXPECT_EQ(recorderEnds(Recorder), Expected) << "engine=dfa " << Tag;
      }
      {
        StridedDfaEngine Engine(*Stride2);
        MatchRecorder Recorder(MatchRecorder::Mode::Collect);
        Engine.run(Input, Recorder);
        EXPECT_EQ(recorderEnds(Recorder), Expected) << "engine=stride2 "
                                                    << Tag;
      }
      {
        MatchRecorder Recorder(MatchRecorder::Mode::Collect);
        Prefilter->run(Input, Recorder);
        EXPECT_EQ(recorderEnds(Recorder), Expected) << "engine=prefilter "
                                                    << Tag;
      }
    }
  }
}

TEST(ArtifactDifferential, TableIDatasetRoundTripPreservesMatches) {
  TempDir Dir;
  for (const char *Abbrev : {"BRO", "TCP"}) {
    const DatasetSpec *Spec = findDataset(Abbrev);
    ASSERT_NE(Spec, nullptr);
    DatasetSpec Sized = *Spec;
    Sized.NumRes = 20; // scaled: the ctest budget, not the paper's
    std::vector<std::string> Patterns = generateRuleset(Sized);
    std::string Stream = generateStream(Sized, Patterns, 1 << 14);

    CompileOptions Options;
    Options.MergingFactor = 8;
    Options.EmitAnml = false;
    Result<CompileArtifacts> Compiled = compileRuleset(Patterns, Options);
    ASSERT_TRUE(Compiled.ok()) << Abbrev;

    const std::string Path = Dir.file(std::string(Abbrev) + ".mfsa");
    ASSERT_TRUE(
        writeArtifactFile(Path, Compiled->Mfsas, Patterns).ok());
    Result<LoadedArtifact> Loaded = loadArtifact(Path);
    ASSERT_TRUE(Loaded.ok()) << Loaded.diag().render();

    EXPECT_EQ(imfantEnds(Loaded->materializeAll(), Stream),
              imfantEnds(Compiled->Mfsas, Stream))
        << Abbrev << ": artifact engines diverge from in-memory compile";
  }
}

//===--------------------------------------------------------------------===//
// Corruption battery: every mutant rejected, never a crash.
//===--------------------------------------------------------------------===//

class ArtifactCorruption : public ::testing::Test {
protected:
  void SetUp() override {
    CompileOptions Options;
    Options.MergingFactor = 4;
    Options.EmitAnml = false;
    Result<CompileArtifacts> Compiled =
        compileRuleset(kSmallRuleset, Options);
    ASSERT_TRUE(Compiled.ok());
    GoodPath = Dir.file("good.mfsa");
    ArtifactWriteOptions Write;
    Write.MergingFactor = 4;
    ASSERT_TRUE(
        writeArtifactFile(GoodPath, Compiled->Mfsas, kSmallRuleset, Write)
            .ok());
    GoodImage = slurp(GoodPath);
    ASSERT_GE(GoodImage.size(), kHeaderBytes);
  }

  /// Writes \p Image to a scratch path and asserts the loader rejects it
  /// with a non-empty diagnostic AND that the fallback path still yields a
  /// working ruleset.
  void expectRejected(const std::string &Image, const std::string &Label) {
    const std::string Path = Dir.file("mutant.mfsa");
    spit(Path, Image);
    Result<LoadedArtifact> Loaded = loadArtifact(Path);
    EXPECT_FALSE(Loaded.ok()) << Label << ": mutant was accepted";
    if (!Loaded.ok())
      EXPECT_FALSE(Loaded.diag().Message.empty()) << Label;

    obs::MetricsRegistry Metrics;
    Result<RecoveredRuleset> Recovered = loadArtifactOrRecompile(
        Path, kSmallRuleset, {}, {}, &Metrics);
    ASSERT_TRUE(Recovered.ok()) << Label << ": fallback failed";
    EXPECT_FALSE(Recovered->FromArtifact) << Label;
    EXPECT_FALSE(Recovered->FallbackReason.empty()) << Label;
    EXPECT_EQ(Metrics.counter("artifact.fallback.count").value(), 1u);
    EXPECT_FALSE(Recovered->Mfsas.empty()) << Label;
  }

  TempDir Dir;
  std::string GoodPath;
  std::string GoodImage;
};

TEST_F(ArtifactCorruption, TruncationsRejected) {
  // Dense near the header, sampled through the payload; every prefix is an
  // invalid image (size mismatch at minimum).
  std::vector<size_t> Cuts;
  for (size_t C = 1; C < 200 && C < GoodImage.size(); C += 13)
    Cuts.push_back(C);
  for (size_t C = 256; C < GoodImage.size(); C += 997)
    Cuts.push_back(C);
  Cuts.push_back(GoodImage.size() - 1);
  for (size_t Cut : Cuts)
    expectRejected(GoodImage.substr(0, Cut),
                   "truncate@" + std::to_string(Cut));
}

TEST_F(ArtifactCorruption, BitFlipsAnywhereRejected) {
  // Every byte of the image is under the header or file checksum, so a
  // single flipped bit anywhere — header, table, payload, padding — must be
  // caught. Sampled stride keeps the test fast; the prime avoids aligning
  // with any record size.
  for (size_t Offset = 0; Offset < GoodImage.size(); Offset += 131) {
    std::string Mutant = GoodImage;
    Mutant[Offset] = static_cast<char>(Mutant[Offset] ^ 0x10);
    expectRejected(Mutant, "bitflip@" + std::to_string(Offset));
  }
}

TEST_F(ArtifactCorruption, SectionOffsetSwapRejected) {
  const uint32_t NumSections =
      loadLE32(reinterpret_cast<const uint8_t *>(GoodImage.data()) + 36);
  ASSERT_GE(NumSections, 2u);
  // Swap every adjacent pair's Offset field; raw (checksums stale) and
  // checksum-fixed (structural checks must object on their own).
  for (uint32_t I = 0; I + 1 < NumSections; ++I) {
    std::string Mutant = GoodImage;
    uint8_t *A = reinterpret_cast<uint8_t *>(Mutant.data()) + kHeaderBytes +
                 uint64_t(I) * kSectionEntryBytes + 8;
    uint8_t *B = A + kSectionEntryBytes;
    for (int K = 0; K < 8; ++K)
      std::swap(A[K], B[K]);
    expectRejected(Mutant, "offset-swap-raw@" + std::to_string(I));
    fixChecksums(Mutant);
    expectRejected(Mutant, "offset-swap-fixed@" + std::to_string(I));
  }
}

TEST_F(ArtifactCorruption, ChecksumFixedStructuralMutantsRejected) {
  uint8_t *Base = nullptr;
  const uint32_t NumSections =
      loadLE32(reinterpret_cast<const uint8_t *>(GoodImage.data()) + 36);

  // Locate a section entry of each kind for targeted damage.
  auto findSection = [&](SectionKind Kind, const std::string &Image) {
    const uint8_t *D = reinterpret_cast<const uint8_t *>(Image.data());
    for (uint32_t I = 0; I < NumSections; ++I) {
      const uint8_t *E = D + kHeaderBytes + uint64_t(I) * kSectionEntryBytes;
      if (loadLE32(E) == static_cast<uint32_t>(Kind))
        return std::make_pair(loadLE64(E + 8), loadLE64(E + 24));
    }
    return std::make_pair(uint64_t(0), uint64_t(0));
  };

  struct Mutation {
    const char *Label;
    void (*Apply)(std::string &, uint64_t, uint64_t);
    SectionKind Target;
  };
  const Mutation Mutations[] = {
      {"transition-from-out-of-range",
       [](std::string &M, uint64_t Off, uint64_t) {
         storeLE32(reinterpret_cast<uint8_t *>(M.data()) + Off, 0xFFFFFF);
       },
       SectionKind::Transitions},
      {"transition-label-out-of-range",
       [](std::string &M, uint64_t Off, uint64_t) {
         storeLE32(reinterpret_cast<uint8_t *>(M.data()) + Off + 8, 0xFFFF);
       },
       SectionKind::Transitions},
      {"transition-bel-out-of-range",
       [](std::string &M, uint64_t Off, uint64_t) {
         storeLE32(reinterpret_cast<uint8_t *>(M.data()) + Off + 12, 0xFFFF);
       },
       SectionKind::Transitions},
      {"rule-initial-out-of-range",
       [](std::string &M, uint64_t Off, uint64_t) {
         storeLE32(reinterpret_cast<uint8_t *>(M.data()) + Off, 0xFFFFFF);
       },
       SectionKind::Rules},
      {"rule-finals-range-overflow",
       [](std::string &M, uint64_t Off, uint64_t) {
         storeLE32(reinterpret_cast<uint8_t *>(M.data()) + Off + 16,
                   0xFFFFFF);
       },
       SectionKind::Rules},
      {"final-state-out-of-range",
       [](std::string &M, uint64_t Off, uint64_t) {
         storeLE32(reinterpret_cast<uint8_t *>(M.data()) + Off, 0xFFFFFF);
       },
       SectionKind::Finals},
      {"belonging-set-zeroed",
       [](std::string &M, uint64_t Off, uint64_t) {
         std::memset(M.data() + Off, 0, 8);
       },
       SectionKind::BelPool},
      {"label-zeroed-to-epsilon",
       [](std::string &M, uint64_t Off, uint64_t) {
         std::memset(M.data() + Off, 0, kLabelRecordBytes);
       },
       SectionKind::LabelPool},
      {"meta-state-count-zeroed",
       [](std::string &M, uint64_t Off, uint64_t) {
         storeLE32(reinterpret_cast<uint8_t *>(M.data()) + Off, 0);
       },
       SectionKind::MfsaMeta},
      {"meta-belwords-inflated",
       [](std::string &M, uint64_t Off, uint64_t) {
         storeLE32(reinterpret_cast<uint8_t *>(M.data()) + Off + 12, 7);
       },
       SectionKind::MfsaMeta},
  };
  (void)Base;
  for (const Mutation &Mu : Mutations) {
    std::string Mutant = GoodImage;
    auto [Off, Count] = findSection(Mu.Target, Mutant);
    ASSERT_NE(Off, 0u) << Mu.Label << ": target section missing";
    ASSERT_NE(Count, 0u) << Mu.Label << ": target section empty";
    Mu.Apply(Mutant, Off, Count);
    fixChecksums(Mutant);
    expectRejected(Mutant, Mu.Label);
  }

  // Header-level structural lies, checksum-fixed.
  {
    std::string Mutant = GoodImage; // unknown section kind
    storeLE32(reinterpret_cast<uint8_t *>(Mutant.data()) + kHeaderBytes, 99);
    fixChecksums(Mutant);
    expectRejected(Mutant, "unknown-section-kind");
  }
  {
    std::string Mutant = GoodImage; // future schema version
    storeLE32(reinterpret_cast<uint8_t *>(Mutant.data()) + 8,
              kSchemaVersion + 1);
    fixChecksums(Mutant);
    expectRejected(Mutant, "future-schema-version");
  }
  {
    std::string Mutant = GoodImage; // absurd MFSA count
    storeLE32(reinterpret_cast<uint8_t *>(Mutant.data()) + 32, 1u << 20);
    fixChecksums(Mutant);
    expectRejected(Mutant, "implausible-mfsa-count");
  }
}

TEST_F(ArtifactCorruption, SpotCheckCatchesSemanticLabelTampering) {
  // Flip symbols inside a label record: structurally valid (non-empty
  // label, all indices in range) but the automaton's language changed.
  // Structural load accepts it; the opt-in spot check must refute it.
  const uint8_t *D = reinterpret_cast<const uint8_t *>(GoodImage.data());
  const uint32_t NumSections = loadLE32(D + 36);
  uint64_t LabelOff = 0;
  for (uint32_t I = 0; I < NumSections; ++I) {
    const uint8_t *E = D + kHeaderBytes + uint64_t(I) * kSectionEntryBytes;
    if (loadLE32(E) == static_cast<uint32_t>(SectionKind::LabelPool) &&
        loadLE64(E + 24) > 0) {
      LabelOff = loadLE64(E + 8);
      break;
    }
  }
  ASSERT_NE(LabelOff, 0u);
  std::string Mutant = GoodImage;
  // xor keeps the record non-empty (flips 'a'..'h' membership words).
  Mutant[LabelOff + 12] = static_cast<char>(Mutant[LabelOff + 12] ^ 0x5A);
  fixChecksums(Mutant);

  const std::string Path = Dir.file("tampered.mfsa");
  spit(Path, Mutant);

  LoadOptions Structural;
  Result<LoadedArtifact> Accepted = loadArtifact(Path, Structural);
  if (!Accepted.ok())
    GTEST_SKIP() << "structural verifier already caught this mutation: "
                 << Accepted.diag().render();

  LoadOptions Checked;
  Checked.SpotCheckValidate = true;
  Checked.SpotCheckMaxRules = 64; // sample every rule of the small set
  Result<LoadedArtifact> Refuted = loadArtifact(Path, Checked);
  EXPECT_FALSE(Refuted.ok())
      << "spot check accepted a semantically tampered artifact";
}

TEST_F(ArtifactCorruption, MissingEmptyAndJunkFilesRejected) {
  Result<LoadedArtifact> Missing = loadArtifact(Dir.file("nope.mfsa"));
  EXPECT_FALSE(Missing.ok());

  const std::string EmptyPath = Dir.file("empty.mfsa");
  spit(EmptyPath, "");
  Result<LoadedArtifact> Empty = loadArtifact(EmptyPath);
  EXPECT_FALSE(Empty.ok());
  EXPECT_NE(Empty.diag().Message.find("empty"), std::string::npos);

  const std::string JunkPath = Dir.file("junk.mfsa");
  std::string Junk;
  for (int I = 0; I < 400; ++I)
    Junk += "not an artifact. ";
  spit(JunkPath, Junk);
  Result<LoadedArtifact> Bad = loadArtifact(JunkPath);
  EXPECT_FALSE(Bad.ok());
  EXPECT_NE(Bad.diag().Message.find("magic"), std::string::npos);

  const std::string DirPath = Dir.file("adir");
  ASSERT_EQ(::mkdir(DirPath.c_str(), 0755), 0);
  Result<LoadedArtifact> NotRegular = loadArtifact(DirPath);
  EXPECT_FALSE(NotRegular.ok());
  ::rmdir(DirPath.c_str());
}

TEST_F(ArtifactCorruption, ResourceCeilingsRejectDeclaredGiants) {
  // Inflate the declared transition count (meta + section Count would have
  // to agree, so lie in the ceiling's face only): loader must refuse before
  // allocating, not after.
  LoadOptions Tiny;
  Tiny.MaxTransitions = 1; // below any real MFSA here
  Result<LoadedArtifact> Loaded = loadArtifact(GoodPath, Tiny);
  EXPECT_FALSE(Loaded.ok());
  EXPECT_NE(Loaded.diag().Message.find("ceiling"), std::string::npos);
}

//===--------------------------------------------------------------------===//
// Crash safety and fault injection.
//===--------------------------------------------------------------------===//

TEST(ArtifactCrashSafety, FailedRewriteKeepsOldArtifactIntact) {
  TempDir Dir;
  const std::vector<std::string> RulesV1 = {"abc", "def"};
  const std::vector<std::string> RulesV2 = {"xyz+"};
  const std::string Path = Dir.file("stable.mfsa");

  CompileOptions Options;
  Options.EmitAnml = false;
  Result<CompileArtifacts> V1 = compileRuleset(RulesV1, Options);
  ASSERT_TRUE(V1.ok());
  ASSERT_TRUE(writeArtifactFile(Path, V1->Mfsas, RulesV1).ok());
  const std::string V1Image = slurp(Path);

  // A rewrite that dies mid-serialization must leave the old image alone.
  Result<CompileArtifacts> V2 = compileRuleset(RulesV2, Options);
  ASSERT_TRUE(V2.ok());
  ASSERT_EQ(setenv("MFSA_FAULT_STAGE", "serialize:0", 1), 0);
  Result<uint64_t> Failed = writeArtifactFile(Path, V2->Mfsas, RulesV2);
  unsetenv("MFSA_FAULT_STAGE");
  EXPECT_FALSE(Failed.ok());
  EXPECT_EQ(slurp(Path), V1Image) << "failed write altered the destination";
  Result<LoadedArtifact> StillV1 = loadArtifact(Path);
  ASSERT_TRUE(StillV1.ok());
  EXPECT_EQ(StillV1->patterns(), RulesV1);

  // A successful rewrite atomically replaces it.
  ASSERT_TRUE(writeArtifactFile(Path, V2->Mfsas, RulesV2).ok());
  Result<LoadedArtifact> NowV2 = loadArtifact(Path);
  ASSERT_TRUE(NowV2.ok());
  EXPECT_EQ(NowV2->patterns(), RulesV2);
}

TEST(ArtifactCrashSafety, NoTempFilesSurviveFailure) {
  TempDir Dir;
  CompileOptions Options;
  Options.EmitAnml = false;
  Result<CompileArtifacts> Compiled = compileRuleset({"abc"}, Options);
  ASSERT_TRUE(Compiled.ok());
  ASSERT_EQ(setenv("MFSA_FAULT_STAGE", "serialize:0", 1), 0);
  Result<uint64_t> Failed =
      writeArtifactFile(Dir.file("a.mfsa"), Compiled->Mfsas, {"abc"});
  unsetenv("MFSA_FAULT_STAGE");
  EXPECT_FALSE(Failed.ok());

  // Nothing — neither destination nor temp — may remain.
  DIR *D = opendir(Dir.file("").c_str());
  ASSERT_NE(D, nullptr);
  int Entries = 0;
  while (struct dirent *E = readdir(D)) {
    const std::string Name = E->d_name;
    if (Name != "." && Name != "..")
      ++Entries;
  }
  closedir(D);
  EXPECT_EQ(Entries, 0) << "leftover files after failed artifact write";
}

TEST(ArtifactFaultInjection, LoadStageFaultFallsBackCleanly) {
  TempDir Dir;
  const std::vector<std::string> Rules = {"abc", "a[bc]d"};
  CompileOptions Options;
  Options.EmitAnml = false;
  Result<CompileArtifacts> Compiled = compileRuleset(Rules, Options);
  ASSERT_TRUE(Compiled.ok());
  const std::string Path = Dir.file("f.mfsa");
  ASSERT_TRUE(writeArtifactFile(Path, Compiled->Mfsas, Rules).ok());

  obs::MetricsRegistry Metrics;
  ASSERT_EQ(setenv("MFSA_FAULT_STAGE", "load:0", 1), 0);
  Result<RecoveredRuleset> Recovered =
      loadArtifactOrRecompile(Path, Rules, {}, {}, &Metrics);
  unsetenv("MFSA_FAULT_STAGE");
  ASSERT_TRUE(Recovered.ok()) << Recovered.diag().render();
  EXPECT_FALSE(Recovered->FromArtifact);
  EXPECT_NE(Recovered->FallbackReason.find("injected fault"),
            std::string::npos);
  EXPECT_EQ(Metrics.counter("artifact.load.failures").value(), 1u);
  EXPECT_EQ(Metrics.counter("artifact.fallback.count").value(), 1u);

  // Without the fault the same call serves from the artifact.
  Result<RecoveredRuleset> Clean =
      loadArtifactOrRecompile(Path, Rules, {}, {}, &Metrics);
  ASSERT_TRUE(Clean.ok());
  EXPECT_TRUE(Clean->FromArtifact);
  EXPECT_EQ(Metrics.counter("artifact.load.count").value(), 1u);
  EXPECT_GT(Metrics.gauge("artifact.load.bytes").value(), 0);
}

TEST(ArtifactFaultInjection, RejectedArtifactWithoutFallbackIsAnError) {
  TempDir Dir;
  const std::string Path = Dir.file("junk.mfsa");
  spit(Path, "garbage bytes, definitely not an artifact image");
  obs::MetricsRegistry Metrics;
  Result<RecoveredRuleset> Recovered =
      loadArtifactOrRecompile(Path, {}, {}, {}, &Metrics);
  EXPECT_FALSE(Recovered.ok());
  EXPECT_NE(Recovered.diag().Message.find("no fallback"), std::string::npos);
  EXPECT_EQ(Metrics.counter("artifact.fallback.count").value(), 1u);
}

//===--------------------------------------------------------------------===//
// Metrics on the happy path.
//===--------------------------------------------------------------------===//

TEST(ArtifactMetrics, LoadEmitsDurationBytesAndCount) {
  TempDir Dir;
  obs::MetricsRegistry Metrics;
  Result<LoadedArtifact> Loaded =
      roundTrip(Dir, {"abc", "de+f"}, 0, {}, &Metrics);
  ASSERT_TRUE(Loaded.ok()) << Loaded.diag().render();
  EXPECT_EQ(Metrics.counter("artifact.load.count").value(), 1u);
  EXPECT_EQ(Metrics.counter("artifact.load.failures").value(), 0u);
  EXPECT_EQ(Metrics.gauge("artifact.load.bytes").value(),
            static_cast<int64_t>(Loaded->header().FileBytes));
  EXPECT_GE(Metrics.gauge("artifact.load.duration_ms").value(), 0);

  const std::string Json = Metrics.toJson();
  EXPECT_NE(Json.find("artifact.load.count"), std::string::npos);
  EXPECT_NE(Json.find("artifact.load.bytes"), std::string::npos);
  EXPECT_NE(Json.find("artifact.load.duration_ms"), std::string::npos);
}

} // namespace
