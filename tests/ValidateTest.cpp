//===- ValidateTest.cpp - translation validation tests -----------------------===//
//
// Part of the mfsa project. MIT License.
//
// Four groups:
//   - ValidatePass: the per-pass equivalence prover on clean and corrupted
//     transformations, the skip and inconclusive paths.
//   - ValidateMerge: Eq. 10 projection proofs on clean merges, and a crafted
//     mutation corpus — each mutant stays structurally valid (the verifier
//     accepts it, so only validation can catch it), is refuted with a
//     counterexample, and the counterexample demonstrates a real behavioral
//     difference between the iMFAnt engine on the mutant and the AST oracle.
//   - Pipeline: compileRuleset under --validate-passes semantics.
//   - Gating: ValidateMode resolution against the MFSA_VALIDATE variable.
//
//===----------------------------------------------------------------------===//

#include "analysis/TranslationValidate.h"
#include "analysis/Verifier.h"
#include "compiler/Pipeline.h"
#include "engine/Imfant.h"
#include "mfsa/Merge.h"
#include "obs/Metrics.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace mfsa;
using namespace mfsa::test;

namespace {

/// Compiles patterns to optimized FSAs and merges them with sequential ids;
/// also hands back the inputs for projection proofs.
Mfsa mergePatterns(const std::vector<std::string> &Patterns,
                   std::vector<Nfa> *InputsOut = nullptr) {
  std::vector<Nfa> Fsas;
  std::vector<uint32_t> Ids;
  for (size_t I = 0; I < Patterns.size(); ++I) {
    Fsas.push_back(compileOptimized(Patterns[I]));
    Ids.push_back(static_cast<uint32_t>(I));
  }
  Mfsa Z = mergeFsas(Fsas, Ids);
  if (InputsOut)
    *InputsOut = std::move(Fsas);
  return Z;
}

bool hasCheck(const DiagnosticEngine &Diags, const std::string &CheckId) {
  for (const Finding &F : Diags.findings())
    if (F.CheckId == CheckId)
      return true;
  return false;
}

const Finding &findCheck(const DiagnosticEngine &Diags,
                         const std::string &CheckId) {
  for (const Finding &F : Diags.findings())
    if (F.CheckId == CheckId)
      return F;
  ADD_FAILURE() << "no finding with check id " << CheckId << "\n"
                << Diags.renderText();
  static const Finding None;
  return None;
}

/// Runs the iMFAnt engine over \p Input in Collect mode.
std::map<uint32_t, std::set<size_t>> engineEnds(const Mfsa &Z,
                                                const std::string &Input) {
  ImfantEngine Engine(Z);
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  Engine.run(Input, Recorder);
  return recorderEnds(Recorder);
}

} // namespace

//===----------------------------------------------------------------------===//
// validatePassEquivalence
//===----------------------------------------------------------------------===//

TEST(ValidatePass, RealPassesProveClean) {
  Result<Regex> Re = parseRegex("a(b|c)*d{1,3}");
  ASSERT_TRUE(Re.ok());
  Result<Nfa> Raw = buildNfa(*Re);
  ASSERT_TRUE(Raw.ok());
  DiagnosticEngine Diags;
  ValidateStats Stats;
  EXPECT_TRUE(validatePassEquivalence(*Raw, optimizeForMerging(*Raw),
                                      "optimize-for-merging", 0, {}, Diags,
                                      &Stats));
  EXPECT_TRUE(Diags.empty()) << Diags.renderText();
  EXPECT_EQ(Stats.Proofs, 1u);
  EXPECT_EQ(Stats.Failures, 0u);
}

TEST(ValidatePass, LanguageChangeIsRefutedWithCounterexample) {
  Nfa Before = compileOptimized("ab|ac");
  Nfa After = compileOptimized("ab"); // a "pass" that dropped a branch
  DiagnosticEngine Diags;
  ValidateStats Stats;
  EXPECT_FALSE(validatePassEquivalence(Before, After, "broken-pass", 3, {},
                                       Diags, &Stats));
  EXPECT_EQ(Stats.Failures, 1u);
  const Finding &F = findCheck(Diags, "validate.pass.language-changed");
  EXPECT_EQ(F.Sev, Severity::Error);
  EXPECT_EQ(F.Span.Rule, 3u);
  EXPECT_EQ(F.Method, "exact");
  ASSERT_TRUE(F.HasCounterexample);
  EXPECT_EQ(F.Counterexample, "ac");
  // The witness is a real language difference, not a prover artifact.
  EXPECT_TRUE(acceptsWord(Before, F.Counterexample));
  EXPECT_FALSE(acceptsWord(After, F.Counterexample));
  EXPECT_NE(F.Message.find("\"ac\""), std::string::npos) << F.Message;
}

TEST(ValidatePass, AnchorFlipIsAnError) {
  Nfa Before = compileOptimized("^ab");
  Nfa After = Before;
  After.setAnchors(false, Before.anchoredEnd());
  DiagnosticEngine Diags;
  EXPECT_FALSE(
      validatePassEquivalence(Before, After, "anchor-eater", 0, {}, Diags));
  EXPECT_TRUE(hasCheck(Diags, "validate.pass.anchor-changed"))
      << Diags.renderText();
}

TEST(ValidatePass, OversizeAutomataAreSkippedNotFailed) {
  Nfa Before = compileOptimized("a(b|c)*d");
  ValidateOptions Options;
  Options.MaxProofStates = 1;
  DiagnosticEngine Diags;
  ValidateStats Stats;
  // Even a language-changing "pass" passes when skipped: not proven wrong.
  EXPECT_TRUE(validatePassEquivalence(Before, compileOptimized("x"), "huge",
                                      0, Options, Diags, &Stats));
  EXPECT_EQ(Stats.Skipped, 1u);
  EXPECT_EQ(Stats.Proofs, 0u);
  EXPECT_TRUE(Diags.empty()) << Diags.renderText();
}

TEST(ValidatePass, MacrostateCutoffIsANote) {
  Nfa Before = compileOptimized("(a|b)*abb");
  ValidateOptions Options;
  Options.Inclusion.MaxMacrostates = 1;
  DiagnosticEngine Diags;
  ValidateStats Stats;
  EXPECT_TRUE(validatePassEquivalence(Before, compileOptimized("(a|b)*abb"),
                                      "slow", 0, Options, Diags, &Stats));
  EXPECT_EQ(Stats.Inconclusive, 1u);
  const Finding &F = findCheck(Diags, "validate.pass.inconclusive");
  EXPECT_EQ(F.Sev, Severity::Note);
}

//===----------------------------------------------------------------------===//
// validateMergeProjection (Eq. 10)
//===----------------------------------------------------------------------===//

TEST(ValidateMerge, CleanMergeProvesEveryRule) {
  std::vector<Nfa> Inputs;
  Mfsa Z = mergePatterns({"a(b|c)*d", "abd", "acd", "xy{1,2}z"}, &Inputs);
  DiagnosticEngine Diags;
  ValidateStats Stats;
  EXPECT_TRUE(validateMergeProjection(Z, Inputs, {}, Diags, &Stats));
  EXPECT_TRUE(Diags.empty()) << Diags.renderText();
  EXPECT_EQ(Stats.Proofs, Z.numRules());
  EXPECT_EQ(Stats.Failures, 0u);
}

TEST(ValidateMerge, RandomMergesProveClean) {
  for (uint64_t Seed = 7400; Seed < 7415; ++Seed) {
    Rng Random(Seed);
    std::vector<std::string> Patterns;
    unsigned Count = 2 + Random.nextBelow(4);
    for (unsigned I = 0; I < Count; ++I)
      Patterns.push_back(randomPattern(Random, /*MaxDepth=*/3));
    std::vector<Nfa> Inputs;
    Mfsa Z = mergePatterns(Patterns, &Inputs);
    DiagnosticEngine Diags;
    EXPECT_TRUE(validateMergeProjection(Z, Inputs, {}, Diags))
        << "seed " << Seed << " " << formatPatterns(Patterns) << "\n"
        << Diags.renderText();
  }
}

// Mutation corpus entry M1: retarget rule 0's 'b' arc back to the initial
// state. The MFSA stays structurally valid (every owned arc still reachable,
// belonging sets intact) so the stage verifier accepts it, but rule 0's
// final becomes unreachable: L(projection) = ∅ while L(input) = {"ab"}.
TEST(ValidateMerge, MutantRetargetedArcIsCaughtAndConfirmedByEngine) {
  std::vector<std::string> Patterns = {"ab", "ac"};
  std::vector<Nfa> Inputs;
  Mfsa Z = mergePatterns(Patterns, &Inputs);

  bool Mutated = false;
  for (MfsaTransition &T : Z.transitions())
    if (T.Bel.test(0) && !T.Bel.test(1) && T.Label.contains('b')) {
      T.To = Z.rule(0).Initial;
      Mutated = true;
      break;
    }
  ASSERT_TRUE(Mutated) << "no arc owned solely by rule 0 over 'b'";
  ASSERT_EQ(verifyMfsaError(Z), "") << "mutant must stay structurally valid";

  DiagnosticEngine Diags;
  EXPECT_FALSE(validateMergeProjection(Z, Inputs, {}, Diags));
  const Finding &F = findCheck(Diags, "validate.merge.projection-changed");
  EXPECT_EQ(F.Span.Rule, 0u);
  ASSERT_TRUE(F.HasCounterexample);
  EXPECT_EQ(F.Counterexample, "ab");

  // The counterexample is a real behavioral difference: the engine running
  // the mutant misses rule 0's match that the AST oracle reports.
  auto Oracle = oracleRuleEnds(Patterns, "ab");
  auto Engine = engineEnds(Z, "ab");
  ASSERT_TRUE(Oracle.count(0));
  EXPECT_FALSE(Engine.count(0));
  EXPECT_NE(Oracle, Engine);
}

// Mutation corpus entry M2: widen rule 0's 'b' arc to [bd]. Structurally
// flawless, but the projection now accepts "ad" which the input never did —
// a false-positive-match miscompile the engine observably commits.
TEST(ValidateMerge, MutantWidenedLabelIsCaughtAndConfirmedByEngine) {
  std::vector<std::string> Patterns = {"ab", "ac"};
  std::vector<Nfa> Inputs;
  Mfsa Z = mergePatterns(Patterns, &Inputs);

  bool Mutated = false;
  for (MfsaTransition &T : Z.transitions())
    if (T.Bel.test(0) && !T.Bel.test(1) && T.Label.contains('b')) {
      T.Label.insert('d');
      Mutated = true;
      break;
    }
  ASSERT_TRUE(Mutated) << "no arc owned solely by rule 0 over 'b'";
  ASSERT_EQ(verifyMfsaError(Z), "") << "mutant must stay structurally valid";

  DiagnosticEngine Diags;
  EXPECT_FALSE(validateMergeProjection(Z, Inputs, {}, Diags));
  const Finding &F = findCheck(Diags, "validate.merge.projection-changed");
  EXPECT_EQ(F.Span.Rule, 0u);
  ASSERT_TRUE(F.HasCounterexample);
  EXPECT_EQ(F.Counterexample, "ad");

  // The engine on the mutant reports a rule-0 match the oracle refutes.
  auto Oracle = oracleRuleEnds(Patterns, "ad");
  auto Engine = engineEnds(Z, "ad");
  EXPECT_FALSE(Oracle.count(0));
  ASSERT_TRUE(Engine.count(0));
  EXPECT_TRUE(Engine[0].count(2));
}

// Seeded sweep of the same two mutation operators over random rulesets:
// every structurally-valid language-changing mutant must be refuted, and
// every refutation's witness must replay as a genuine projection/input
// difference through the oracle.
TEST(ValidateMerge, SeededMutantsAreRefutedWithReplayableWitnesses) {
  unsigned Refuted = 0;
  for (uint64_t Seed = 7500; Seed < 7520; ++Seed) {
    Rng Random(Seed);
    std::vector<std::string> Patterns;
    unsigned Count = 2 + Random.nextBelow(3);
    for (unsigned I = 0; I < Count; ++I)
      Patterns.push_back(randomPattern(Random, /*MaxDepth=*/2));
    std::vector<Nfa> Inputs;
    Mfsa Z = mergePatterns(Patterns, &Inputs);
    if (Z.numTransitions() == 0)
      continue;

    // Retarget one pseudo-randomly chosen arc at its own source (a self
    // loop): always structurally valid (reachability is preserved), and
    // usually language-changing.
    uint32_t Pick = static_cast<uint32_t>(Random.nextBelow(Z.numTransitions()));
    Z.transitions()[Pick].To = Z.transitions()[Pick].From;
    if (!verifyMfsaError(Z).empty())
      continue; // mutant tripped the structural verifier; not our quarry

    DiagnosticEngine Diags;
    ValidateStats Stats;
    bool Ok = validateMergeProjection(Z, Inputs, {}, Diags, &Stats);
    EXPECT_FALSE(hasCheck(Diags, "validate.replay.diverged"))
        << "seed " << Seed << "\n" << Diags.renderText();
    if (Ok)
      continue; // the mutation happened to preserve every projection
    ++Refuted;
    const Finding &F = findCheck(Diags, "validate.merge.projection-changed");
    ASSERT_TRUE(F.HasCounterexample);
    // Replay: the witness separates the projection from the input FSA.
    RuleId Rule = 0;
    for (RuleId Id = 0; Id < Z.numRules(); ++Id)
      if (Z.rule(Id).GlobalId == F.Span.Rule)
        Rule = Id;
    EXPECT_NE(acceptsWord(Z.extractRule(Rule), F.Counterexample),
              acceptsWord(Inputs[Rule], F.Counterexample))
        << "seed " << Seed << " " << formatPatterns(Patterns);
  }
  EXPECT_GT(Refuted, 3u) << "the mutation sweep stopped finding miscompiles";
}

//===----------------------------------------------------------------------===//
// Pipeline integration
//===----------------------------------------------------------------------===//

TEST(PipelineValidate, CleanRulesetCompilesWithProofs) {
  CompileOptions Options;
  Options.EmitAnml = false;
  Options.Validate = ValidateMode::On;
  Result<CompileArtifacts> Artifacts =
      compileRuleset({"a(b|c)*d", "abd", "ef{1,3}g"}, Options);
  ASSERT_TRUE(Artifacts.ok()) << Artifacts.diag().render();
  const ValidateStats &V = Artifacts->Telemetry.Validation;
  EXPECT_GT(V.Proofs, 0u);
  EXPECT_EQ(V.Failures, 0u);
}

TEST(PipelineValidate, OffModeRunsNoProofs) {
  CompileOptions Options;
  Options.EmitAnml = false;
  Options.Validate = ValidateMode::Off;
  Result<CompileArtifacts> Artifacts =
      compileRuleset({"a(b|c)*d", "abd"}, Options);
  ASSERT_TRUE(Artifacts.ok()) << Artifacts.diag().render();
  const ValidateStats &V = Artifacts->Telemetry.Validation;
  EXPECT_EQ(V.Proofs + V.Failures + V.Inconclusive + V.Skipped, 0u);
}

TEST(PipelineValidate, MetricsExportInclusionCounters) {
  CompileOptions Options;
  Options.EmitAnml = false;
  Options.Validate = ValidateMode::On;
  Result<CompileArtifacts> Artifacts =
      compileRuleset({"ab", "a[bc]d"}, Options);
  ASSERT_TRUE(Artifacts.ok()) << Artifacts.diag().render();
  obs::MetricsRegistry Registry;
  Artifacts->Telemetry.recordTo(Registry);
  std::string Text = Registry.toText();
  EXPECT_NE(Text.find("analysis.inclusion.proofs"), std::string::npos) << Text;
  EXPECT_NE(Text.find("analysis.inclusion.antichain_peak"), std::string::npos)
      << Text;
}

//===----------------------------------------------------------------------===//
// ValidateMode resolution (the MFSA_VALIDATE gate)
//===----------------------------------------------------------------------===//

TEST(ValidateGating, ExplicitModesIgnoreTheEnvironment) {
  ASSERT_EQ(setenv("MFSA_VALIDATE", "0", 1), 0);
  EXPECT_TRUE(validatePassesEnabled(ValidateMode::On, 1000, 64));
  ASSERT_EQ(setenv("MFSA_VALIDATE", "1", 1), 0);
  EXPECT_FALSE(validatePassesEnabled(ValidateMode::Off, 1, 64));
  unsetenv("MFSA_VALIDATE");
}

TEST(ValidateGating, EnvOverridesAutoBothWays) {
  ASSERT_EQ(setenv("MFSA_VALIDATE", "on", 1), 0);
  EXPECT_TRUE(validatePassesEnabled(ValidateMode::Auto, 1000, 64));
  ASSERT_EQ(setenv("MFSA_VALIDATE", "off", 1), 0);
  EXPECT_FALSE(validatePassesEnabled(ValidateMode::Auto, 1, 64));
  unsetenv("MFSA_VALIDATE");
}

TEST(ValidateGating, AutoFollowsBuildDefaultAndRulesetSize) {
  unsetenv("MFSA_VALIDATE");
  EXPECT_EQ(validatePassesEnabled(ValidateMode::Auto, 10, 64),
            kValidatePassesDefault);
  // Above the auto threshold, Auto always resolves off.
  EXPECT_FALSE(validatePassesEnabled(ValidateMode::Auto, 65, 64));
}
