//===- SyncStressTest.cpp - concurrency protocol stress tests -------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// High-thread-count stress over the annotated sync layer's two hottest
/// protocols, written for TSan (the CI tsan job runs `ctest -L tsan` on a
/// -fsanitize=thread build):
///
///   - RulesetCache under eviction churn: a capacity-2 cache hammered by
///     rotating rulesets (including an invalid one exercising the
///     negative-cache path) while other threads scan through acquired
///     entries and poll residentEntries() — the RCU-style contract says an
///     evicted entry must stay fully usable for the sessions holding it.
///   - ThreadPool submit/wait storms racing tasks that themselves submit.
///
/// Scale knobs: MFSA_SYNC_STRESS_THREADS (default 128 total across roles)
/// and MFSA_SYNC_STRESS_MS (default 2000) let the CI soak leg run the same
/// binary harder without a rebuild.
///
//===----------------------------------------------------------------------===//

#include "service/RulesetCache.h"

#include "engine/Imfant.h"
#include "obs/Metrics.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

using namespace mfsa;
using namespace mfsa::service;

namespace {

unsigned envUnsigned(const char *Name, unsigned Default) {
  const char *Env = std::getenv(Name);
  if (!Env || !*Env)
    return Default;
  unsigned long V = std::strtoul(Env, nullptr, 10);
  return V < 1 ? 1 : static_cast<unsigned>(V);
}

unsigned stressThreads() {
  return envUnsigned("MFSA_SYNC_STRESS_THREADS", 128);
}

std::chrono::milliseconds stressDuration() {
  return std::chrono::milliseconds(envUnsigned("MFSA_SYNC_STRESS_MS", 2000));
}

/// Rotating ruleset pool: 8 distinct valid rulesets (so a capacity-2 cache
/// evicts constantly) plus one invalid ruleset feeding the negative cache.
std::vector<std::string> rulesFor(unsigned Slot) {
  if (Slot == 8)
    return {"("}; // Unbalanced: compiles never, negative-caches always.
  return {"stress" + std::to_string(Slot) + "[0-9]+",
          "tail" + std::to_string(Slot) + "$"};
}

} // namespace

TEST(SyncStress, CacheEvictionChurnVsLookupsAndScans) {
  obs::MetricsRegistry Registry;
  CacheOptions Opts;
  Opts.Capacity = 2; // Far below the 8 live keys: constant eviction.
  RulesetCache Cache(Opts, &Registry);

  const unsigned Total = stressThreads();
  const unsigned Scanners = Total / 4 + 1;
  const unsigned Pollers = Total / 8 + 1;
  const unsigned Churners = Total - Scanners - Pollers > 0
                                ? Total - Scanners - Pollers
                                : 1;
  const auto Deadline =
      std::chrono::steady_clock::now() + stressDuration();

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Acquires{0};
  std::atomic<uint64_t> NegativeHits{0};
  std::atomic<uint64_t> Scans{0};
  std::atomic<bool> Failed{false};

  auto Churner = [&](unsigned Seed) {
    unsigned Slot = Seed;
    while (!Stop.load(std::memory_order_relaxed)) {
      Slot = (Slot + 1) % 9; // 0..7 valid, 8 = the negative-cache key.
      CacheSource Source = CacheSource::Compiled;
      auto Acquired = Cache.acquire(rulesFor(Slot), 2, &Source);
      if (Slot == 8) {
        if (Acquired.ok()) {
          Failed.store(true, std::memory_order_relaxed);
          return;
        }
        NegativeHits.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (!Acquired.ok()) {
        Failed.store(true, std::memory_order_relaxed);
        return;
      }
      Acquires.fetch_add(1, std::memory_order_relaxed);
    }
  };

  // Scanner threads hold an entry across eviction and keep scanning with
  // it — the refcounted-eviction contract under maximum churn.
  auto Scanner = [&](unsigned Seed) {
    unsigned Slot = Seed % 8;
    while (!Stop.load(std::memory_order_relaxed)) {
      const std::string Input =
          "noise stress" + std::to_string(Slot) + "123 more tail" +
          std::to_string(Slot);
      auto Acquired = Cache.acquire(rulesFor(Slot), 2, nullptr);
      if (!Acquired.ok()) {
        Failed.store(true, std::memory_order_relaxed);
        return;
      }
      std::shared_ptr<const CompiledRuleset> Pinned = *Acquired;
      for (int Repeat = 0; Repeat < 4; ++Repeat) {
        uint64_t Matches = 0;
        for (const ImfantEngine &Engine : Pinned->Engines) {
          MatchRecorder Rec;
          Engine.run(Input, Rec);
          Matches += Rec.total();
        }
        if (Matches == 0) { // Input always contains both patterns.
          Failed.store(true, std::memory_order_relaxed);
          return;
        }
        Scans.fetch_add(1, std::memory_order_relaxed);
      }
      Slot = (Slot + 3) % 8;
    }
  };

  auto Poller = [&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      size_t Resident = Cache.residentEntries();
      if (Resident > Opts.Capacity) { // Eviction keeps the ceiling.
        Failed.store(true, std::memory_order_relaxed);
        return;
      }
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> Threads;
  Threads.reserve(Total);
  for (unsigned I = 0; I < Churners; ++I)
    Threads.emplace_back(Churner, I);
  for (unsigned I = 0; I < Scanners; ++I)
    Threads.emplace_back(Scanner, I);
  for (unsigned I = 0; I < Pollers; ++I)
    Threads.emplace_back(Poller);

  std::this_thread::sleep_until(Deadline);
  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &T : Threads)
    T.join();

  EXPECT_FALSE(Failed.load());
  EXPECT_GT(Acquires.load(), 0u);
  EXPECT_GT(NegativeHits.load(), 0u);
  EXPECT_GT(Scans.load(), 0u);
  EXPECT_LE(Cache.residentEntries(), Opts.Capacity);
  // Eviction must actually have happened for the test to mean anything.
  EXPECT_GT(Registry.counter("service.cache.evictions").value(), 0u);
}

TEST(SyncStress, ThreadPoolSubmitWaitStorm) {
  ThreadPool Pool(8);
  const auto Deadline =
      std::chrono::steady_clock::now() +
      std::min(stressDuration(), std::chrono::milliseconds(1000));

  std::atomic<uint64_t> Executed{0};
  // Tasks that submit follow-up tasks race wait() callers: wait() returns
  // only when the queue AND active set are empty, so the resubmission from
  // inside a task must be visible to it.
  while (std::chrono::steady_clock::now() < Deadline) {
    for (int I = 0; I < 64; ++I)
      Pool.submit([&] {
        Executed.fetch_add(1, std::memory_order_relaxed);
        Pool.submit([&] { Executed.fetch_add(1, std::memory_order_relaxed); });
      });
    Pool.wait();
  }
  Pool.wait();
  EXPECT_GT(Executed.load(), 0u);
  EXPECT_EQ(Executed.load() % 2, 0u); // Every parent ran its child.
}
