//===- PrefilterTest.cpp - Aho-Corasick, literal analysis, prefilter engine --===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "engine/AhoCorasick.h"
#include "engine/Prefilter.h"
#include "fsa/LiteralAnalysis.h"
#include "fsa/Reference.h"
#include "regex/Parser.h"
#include "workload/Datasets.h"
#include "workload/Sampler.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <map>

using namespace mfsa;
using namespace mfsa::test;

//===----------------------------------------------------------------------===//
// Aho-Corasick
//===----------------------------------------------------------------------===//

namespace {

/// All (literal, end) pairs the automaton reports.
std::multiset<std::pair<uint32_t, size_t>>
acHits(const std::vector<std::string> &Literals, const std::string &Input) {
  AhoCorasick Automaton(Literals);
  std::multiset<std::pair<uint32_t, size_t>> Hits;
  Automaton.scan(Input,
                 [&](uint32_t L, size_t End) { Hits.emplace(L, End); });
  return Hits;
}

/// Naive quadratic reference.
std::multiset<std::pair<uint32_t, size_t>>
naiveHits(const std::vector<std::string> &Literals,
          const std::string &Input) {
  std::multiset<std::pair<uint32_t, size_t>> Hits;
  for (uint32_t L = 0; L < Literals.size(); ++L) {
    const std::string &Lit = Literals[L];
    for (size_t Pos = 0; Pos + Lit.size() <= Input.size(); ++Pos)
      if (Input.compare(Pos, Lit.size(), Lit) == 0)
        Hits.emplace(L, Pos + Lit.size());
  }
  return Hits;
}

} // namespace

TEST(AhoCorasick, BasicOccurrences) {
  std::vector<std::string> Literals = {"he", "she", "his", "hers"};
  EXPECT_EQ(acHits(Literals, "ushers"), naiveHits(Literals, "ushers"));
  // The classic: "ushers" contains she(4), he(4), hers(6).
  auto Hits = acHits(Literals, "ushers");
  EXPECT_EQ(Hits.size(), 3u);
  EXPECT_TRUE(Hits.count({0, 4}));
  EXPECT_TRUE(Hits.count({1, 4}));
  EXPECT_TRUE(Hits.count({3, 6}));
}

TEST(AhoCorasick, OverlappingAndNested) {
  std::vector<std::string> Literals = {"aa", "aaa", "a"};
  EXPECT_EQ(acHits(Literals, "aaaa"), naiveHits(Literals, "aaaa"));
}

TEST(AhoCorasick, DuplicateLiteralsBothReport) {
  std::vector<std::string> Literals = {"ab", "ab"};
  auto Hits = acHits(Literals, "xabx");
  EXPECT_EQ(Hits.size(), 2u);
}

TEST(AhoCorasick, RandomAgainstNaive) {
  Rng Random(404);
  for (int Trial = 0; Trial < 20; ++Trial) {
    std::vector<std::string> Literals;
    unsigned Count = 1 + Random.nextBelow(6);
    for (unsigned I = 0; I < Count; ++I)
      Literals.push_back(randomInput(Random, 1 + Random.nextBelow(4)));
    std::string Input = randomInput(Random, 60);
    EXPECT_EQ(acHits(Literals, Input), naiveHits(Literals, Input));
  }
}

TEST(AhoCorasick, NoMatches) {
  EXPECT_TRUE(acHits({"xyz"}, "abcabc").empty());
  EXPECT_TRUE(acHits({"abc"}, "").empty());
}

//===----------------------------------------------------------------------===//
// Literal analysis
//===----------------------------------------------------------------------===//

namespace {

std::string literalOf(const std::string &Pattern) {
  Result<Regex> Re = parseRegex(Pattern);
  EXPECT_TRUE(Re.ok()) << Pattern;
  return mandatoryLiteral(*Re->Root);
}

} // namespace

TEST(LiteralAnalysis, PlainLiteralsAndRuns) {
  EXPECT_EQ(literalOf("abcdef"), "abcdef");
  EXPECT_EQ(literalOf("ab[xy]cdef"), "cdef"); // class breaks the run
  EXPECT_EQ(literalOf("(abc)def"), "abcdef"); // groups flatten
  EXPECT_EQ(literalOf("ab.*cdefg"), "cdefg");
}

TEST(LiteralAnalysis, QuantifiersAreConservative) {
  EXPECT_EQ(literalOf("abc(d)?ef"), "abc"); // optional breaks
  EXPECT_EQ(literalOf("abcx{2,5}"), "abcxx");
  EXPECT_EQ(literalOf("(abcd){1,3}"), "abcd");
  EXPECT_EQ(literalOf("(abcd)*x"), "x"); // star body skippable
}

TEST(LiteralAnalysis, AlternationsNeedCommonLiteral) {
  EXPECT_EQ(literalOf("(abc|xyz)"), "");
  EXPECT_EQ(literalOf("(abc|abc)"), "abc");
  EXPECT_EQ(literalOf("x(aaa|bbb)y"), "x"); // falls back to the frame runs
}

TEST(LiteralAnalysis, MandatoryLiteralIsActuallyMandatory) {
  // Property: every sampled match contains the extracted literal.
  const char *Patterns[] = {"ab[cd]efg",     "x{2}y(z|w)abc", "(abc)+d",
                            "q.*longword.*p", "no(pe|pq)literal"};
  Rng Random(505);
  for (const char *Pattern : Patterns) {
    Result<Regex> Re = parseRegex(Pattern);
    ASSERT_TRUE(Re.ok());
    std::string Literal = mandatoryLiteral(*Re->Root);
    if (Literal.empty())
      continue;
    for (int Trial = 0; Trial < 20; ++Trial) {
      std::string Sample = sampleMatch(*Re, Random);
      EXPECT_NE(Sample.find(Literal), std::string::npos)
          << Pattern << ": '" << Sample << "' lacks '" << Literal << "'";
    }
  }
}

TEST(LiteralAnalysis, BoundedMatchLength) {
  EXPECT_EQ(boundedMatchLength(compileOptimized("abc")), 3u);
  EXPECT_EQ(boundedMatchLength(compileOptimized("a{2,5}")), 5u);
  EXPECT_EQ(boundedMatchLength(compileOptimized("(ab|cdef)g")), 5u);
  EXPECT_EQ(boundedMatchLength(compileOptimized("ab*c")), 0u);  // cyclic
  EXPECT_EQ(boundedMatchLength(compileOptimized("a.*b")), 0u);  // cyclic
}

TEST(LiteralAnalysis, PrefilterDecision) {
  auto Analyze = [](const std::string &Pattern) {
    Result<Regex> Re = parseRegex(Pattern);
    EXPECT_TRUE(Re.ok());
    return analyzeForPrefilter(*Re, compileOptimized(Pattern));
  };
  EXPECT_TRUE(Analyze("hello[0-9]world").Prefilterable);
  EXPECT_FALSE(Analyze("^helloworld").Prefilterable); // anchored
  EXPECT_FALSE(Analyze("hello.*world").Prefilterable); // unbounded
  EXPECT_FALSE(Analyze("[ab][cd]").Prefilterable);     // no literal
  EXPECT_FALSE(Analyze("ab").Prefilterable);           // below min length
  PrefilterInfo Info = Analyze("xy(abc|abc)z{1,2}");
  EXPECT_TRUE(Info.Prefilterable);
  EXPECT_EQ(Info.MaxMatchLength, 7u);
}

//===----------------------------------------------------------------------===//
// Prefilter engine end-to-end
//===----------------------------------------------------------------------===//

namespace {

std::map<uint32_t, std::set<size_t>>
prefilterEnds(const PrefilterEngine &Engine, const std::string &Input) {
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  Engine.run(Input, Recorder);
  std::map<uint32_t, std::set<size_t>> Ends;
  for (const auto &[Rule, End] : Recorder.matches()) {
    // Engine-level dedup only holds within a window; assert pairs unique.
    EXPECT_TRUE(Ends[Rule].insert(static_cast<size_t>(End)).second)
        << "duplicate (rule,end) " << Rule << "," << End;
  }
  return Ends;
}

std::map<uint32_t, std::set<size_t>>
oracleEnds(const std::vector<std::string> &Patterns,
           const std::string &Input) {
  std::map<uint32_t, std::set<size_t>> Ends;
  for (size_t I = 0; I < Patterns.size(); ++I) {
    Result<Regex> Re = parseRegex(Patterns[I]);
    EXPECT_TRUE(Re.ok());
    std::set<size_t> E = astMatchEnds(*Re, Input);
    if (!E.empty())
      Ends[static_cast<uint32_t>(I)] = E;
  }
  return Ends;
}

} // namespace

TEST(PrefilterEngine, SplitsRulesAndMatchesOracle) {
  std::vector<std::string> Patterns = {
      "attack[0-9]{1,3}", // prefilterable
      "^session",         // residual: anchored
      "evil.*payload",    // residual: unbounded
      "exploit(42|77)",   // prefilterable
      "[ab][cd]",         // residual: no literal
  };
  Result<PrefilterEngine> Engine = PrefilterEngine::create(Patterns);
  ASSERT_TRUE(Engine.ok());
  EXPECT_EQ(Engine->numPrefiltered(), 2u);
  EXPECT_EQ(Engine->numResidual(), 3u);

  std::string Input =
      "session evil stuff payload attack17 exploit42 ac bd attack9";
  EXPECT_EQ(prefilterEnds(*Engine, Input), oracleEnds(Patterns, Input));
}

TEST(PrefilterEngine, OverlappingHitsDoNotDuplicate) {
  // Repeated adjacent literals force window coalescing.
  std::vector<std::string> Patterns = {"abab[xy]?"};
  Result<PrefilterEngine> Engine = PrefilterEngine::create(Patterns, 3);
  ASSERT_TRUE(Engine.ok());
  ASSERT_EQ(Engine->numPrefiltered(), 1u);
  std::string Input = "ababababababx";
  EXPECT_EQ(prefilterEnds(*Engine, Input), oracleEnds(Patterns, Input));
}

TEST(PrefilterEngine, AllResidualStillWorks) {
  std::vector<std::string> Patterns = {"a.*b", "^cd"};
  Result<PrefilterEngine> Engine = PrefilterEngine::create(Patterns);
  ASSERT_TRUE(Engine.ok());
  EXPECT_EQ(Engine->numPrefiltered(), 0u);
  std::string Input = "cdaxxb";
  EXPECT_EQ(prefilterEnds(*Engine, Input), oracleEnds(Patterns, Input));
}

TEST(PrefilterEngine, AllPrefilteredNoResidual) {
  std::vector<std::string> Patterns = {"alpha", "beta[0-9]"};
  Result<PrefilterEngine> Engine = PrefilterEngine::create(Patterns);
  ASSERT_TRUE(Engine.ok());
  EXPECT_EQ(Engine->numResidual(), 0u);
  std::string Input = "xxalphayy beta7 alpha";
  EXPECT_EQ(prefilterEnds(*Engine, Input), oracleEnds(Patterns, Input));
}

TEST(PrefilterEngine, RejectsMalformedRules) {
  Result<PrefilterEngine> Engine = PrefilterEngine::create({"ok", "bad("});
  ASSERT_FALSE(Engine.ok());
  EXPECT_NE(Engine.diag().Message.find("rule 1"), std::string::npos);
}

TEST(PrefilterEngine, DatasetSliceAgainstFullScan) {
  // Compare against the straightforward full-ruleset MFSA scan on a real
  // dataset slice with planted matches.
  const DatasetSpec &Spec = *findDataset("TCP");
  std::vector<std::string> Rules = generateRuleset(Spec);
  Rules.resize(30);
  std::string Stream = generateStream(Spec, Rules, 8192);

  Result<PrefilterEngine> Engine = PrefilterEngine::create(Rules);
  ASSERT_TRUE(Engine.ok());
  EXPECT_EQ(prefilterEnds(*Engine, Stream), oracleEnds(Rules, Stream));
}
