#!/usr/bin/env bash
#===- cli_robustness.sh - CLI exit-code and diagnostics contract -------------===#
#
# Part of the mfsa project. MIT License.
#
# Drives the built mfsac / imfant_run / dataset_gen binaries through every
# documented failure mode and asserts the exit-code contract (CliInput.h):
#
#   0 ok, 1 runtime, 2 usage, 3 missing/unreadable input, 4 empty input,
#   5 artifact rejected with no usable fallback
#
# plus one-line "error: ..." diagnostics on stderr and the end-to-end
# artifact round trip (emit -> load -> identical match totals, corrupted ->
# diagnosed fallback).
#
# Usage: cli_robustness.sh <mfsac> <imfant_run> <dataset_gen>
#
#===----------------------------------------------------------------------===#

set -u

MFSAC=$1
IMFANT=$2
DATAGEN=$3

WORK=$(mktemp -d "${TMPDIR:-/tmp}/mfsa-cli-XXXXXX")
trap 'rm -rf "$WORK"' EXIT
cd "$WORK" || exit 1

FAILURES=0

# check <label> <expected-exit> <cmd...>: runs the command, captures stderr,
# and verifies the exit code plus (for failures) a one-line error diagnostic.
check() {
  local label=$1 want=$2
  shift 2
  "$@" >stdout.txt 2>stderr.txt
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL $label: exit $got, want $want (cmd: $*)"
    sed 's/^/    stderr: /' stderr.txt
    FAILURES=$((FAILURES + 1))
    return
  fi
  # Usage errors (exit 2) print the usage text; every other failure must be
  # exactly one "error: " diagnostic line.
  if [ "$want" -ge 3 ]; then
    local lines
    lines=$(grep -c '^error: ' stderr.txt)
    if [ "$lines" -ne 1 ]; then
      echo "FAIL $label: want exactly one 'error: ' line on stderr, got $lines"
      sed 's/^/    stderr: /' stderr.txt
      FAILURES=$((FAILURES + 1))
      return
    fi
  fi
  echo "ok   $label"
}

# --- Fixtures ---------------------------------------------------------------
"$DATAGEN" -n 16 -b 8192 -o . BRO >/dev/null || {
  echo "FAIL dataset_gen fixture"; exit 1; }
: > empty.rules
: > empty.stream
printf 'this is not an artifact\n' > junk.mfsa
mkdir notafile.rules

# --- Usage errors (exit 2) --------------------------------------------------
check "mfsac: no arguments"            2 "$MFSAC"
check "mfsac: unknown flag"            2 "$MFSAC" --no-such-flag bro.rules
check "imfant_run: no arguments"       2 "$IMFANT"
check "imfant_run: unknown flag"       2 "$IMFANT" --bogus s.bin a.anml
check "dataset_gen: no dataset"        2 "$DATAGEN"
check "dataset_gen: unknown dataset"   2 "$DATAGEN" NOPE

# --- Missing/unreadable inputs (exit 3) -------------------------------------
check "mfsac: missing rules file"      3 "$MFSAC" --no-anml nope.rules
check "mfsac: rules path is a dir"     3 "$MFSAC" --no-anml notafile.rules
check "imfant_run: missing stream"     3 "$IMFANT" nope.bin a.anml
check "imfant_run: missing fallback"   3 "$IMFANT" --load-artifact junk.mfsa \
                                         --fallback-rules nope.rules bro.stream

# --- Empty inputs (exit 4) --------------------------------------------------
check "mfsac: empty rules file"        4 "$MFSAC" --no-anml empty.rules
check "imfant_run: empty stream"       4 "$IMFANT" empty.stream a.anml

# --- Artifact round trip (exit 0) -------------------------------------------
check "mfsac: compile + emit artifact" 0 "$MFSAC" -M 4 --no-anml \
                                         --emit-artifact bro.mfsa bro.rules
check "imfant_run: load artifact"      0 "$IMFANT" --load-artifact bro.mfsa \
                                         bro.stream
ARTIFACT_MATCHES=$(grep '^total matches:' stdout.txt)

check "mfsac: compile to ANML"         0 "$MFSAC" -M 4 -o . bro.rules
check "imfant_run: run from ANML"      0 "$IMFANT" bro.stream mfsa_*.anml
ANML_MATCHES=$(grep '^total matches:' stdout.txt)

if [ "$ARTIFACT_MATCHES" != "$ANML_MATCHES" ] || [ -z "$ARTIFACT_MATCHES" ]; then
  echo "FAIL round trip: artifact run '$ARTIFACT_MATCHES' != ANML run '$ANML_MATCHES'"
  FAILURES=$((FAILURES + 1))
else
  echo "ok   round trip: $ARTIFACT_MATCHES both ways"
fi

# --- Rejected artifacts (exit 5 / diagnosed fallback) -----------------------
check "imfant_run: junk artifact, no fallback"    5 "$IMFANT" \
      --load-artifact junk.mfsa bro.stream
check "imfant_run: missing artifact, no fallback" 5 "$IMFANT" \
      --load-artifact nope.mfsa bro.stream

# A corrupted artifact with fallback rules must degrade to a recompile and
# still produce the same totals.
cp bro.mfsa corrupt.mfsa
printf '\xff' | dd of=corrupt.mfsa bs=1 seek=4500 conv=notrunc 2>/dev/null
check "imfant_run: corrupted artifact + fallback" 0 "$IMFANT" \
      --load-artifact corrupt.mfsa --fallback-rules bro.rules bro.stream
FALLBACK_MATCHES=$(grep '^total matches:' stdout.txt)
if ! grep -q '^warning: artifact rejected' stderr.txt; then
  echo "FAIL fallback: missing rejection warning on stderr"
  FAILURES=$((FAILURES + 1))
elif [ "$FALLBACK_MATCHES" != "$ARTIFACT_MATCHES" ]; then
  echo "FAIL fallback: '$FALLBACK_MATCHES' != '$ARTIFACT_MATCHES'"
  FAILURES=$((FAILURES + 1))
else
  echo "ok   fallback recompile: $FALLBACK_MATCHES"
fi

# --- Fault injection through the CLIs ---------------------------------------
MFSA_FAULT_STAGE=serialize:0 "$MFSAC" --no-anml --emit-artifact f.mfsa \
    bro.rules >/dev/null 2>stderr.txt
if [ $? -ne 1 ] || [ -e f.mfsa ]; then
  echo "FAIL fault serialize: expected exit 1 and no partial artifact"
  FAILURES=$((FAILURES + 1))
else
  echo "ok   fault serialize: diagnosed, no partial file"
fi
check "imfant_run: injected load fault, fallback" 0 env \
      MFSA_FAULT_STAGE=load:0 "$IMFANT" --load-artifact bro.mfsa \
      --fallback-rules bro.rules bro.stream

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES CLI robustness check(s) failed"
  exit 1
fi
echo "all CLI robustness checks passed"
