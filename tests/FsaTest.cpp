//===- FsaTest.cpp - unit + property tests for the FSA middle-end ------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "fsa/Builder.h"
#include "fsa/Nfa.h"
#include "fsa/Passes.h"
#include "fsa/Reference.h"
#include "regex/Parser.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace mfsa;
using namespace mfsa::test;

//===----------------------------------------------------------------------===//
// Nfa model basics
//===----------------------------------------------------------------------===//

TEST(Nfa, AddAndQuery) {
  Nfa A;
  StateId S0 = A.addState();
  StateId S1 = A.addState();
  A.setInitial(S0);
  A.addFinal(S1);
  A.addTransition(S0, S1, SymbolSet::singleton('x'));
  EXPECT_EQ(A.numStates(), 2u);
  EXPECT_EQ(A.numTransitions(), 1u);
  EXPECT_TRUE(A.isFinal(S1));
  EXPECT_FALSE(A.isFinal(S0));
  EXPECT_FALSE(A.hasEpsilons());
  A.addTransition(S0, S0, SymbolSet());
  EXPECT_TRUE(A.hasEpsilons());
}

TEST(Nfa, CanonicalizeSortsAndDedupes) {
  Nfa A;
  StateId S0 = A.addState();
  StateId S1 = A.addState();
  A.addTransition(S1, S0, SymbolSet::singleton('b'));
  A.addTransition(S0, S1, SymbolSet::singleton('a'));
  A.addTransition(S0, S1, SymbolSet::singleton('a')); // duplicate
  A.addFinal(S1);
  A.addFinal(S1);
  A.canonicalize();
  EXPECT_EQ(A.numTransitions(), 2u);
  EXPECT_EQ(A.finals().size(), 1u);
  EXPECT_EQ(A.transitions()[0].From, S0);
}

TEST(Nfa, StatsCountCcTransitions) {
  Nfa A;
  StateId S0 = A.addState();
  StateId S1 = A.addState();
  A.addTransition(S0, S1, SymbolSet::singleton('a'));
  A.addTransition(S0, S1, SymbolSet::range('0', '9'));
  NfaStats S = computeStats(A);
  EXPECT_EQ(S.NumStates, 2u);
  EXPECT_EQ(S.NumTransitions, 2u);
  EXPECT_EQ(S.NumCcTransitions, 1u);
  EXPECT_EQ(S.TotalCcLength, 10u);
}

TEST(Nfa, DotOutputMentionsStates) {
  Nfa A;
  StateId S0 = A.addState();
  StateId S1 = A.addState();
  A.setInitial(S0);
  A.addFinal(S1);
  A.addTransition(S0, S1, SymbolSet::singleton('q'));
  std::string Dot = writeDot(A, "t");
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("0 -> 1"), std::string::npos);
  EXPECT_NE(Dot.find("doublecircle"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Thompson construction
//===----------------------------------------------------------------------===//

namespace {

Nfa buildFor(const std::string &Pattern, BuildOptions Options = {}) {
  Result<Regex> Re = parseRegex(Pattern);
  EXPECT_TRUE(Re.ok()) << Pattern;
  Result<Nfa> A = buildNfa(*Re, Options);
  EXPECT_TRUE(A.ok()) << Pattern;
  return A.take();
}

/// Shorthand: simulate the ε-NFA built from Pattern over Input.
std::set<size_t> nfaEnds(const std::string &Pattern,
                         const std::string &Input) {
  return simulateNfa(buildFor(Pattern), Input);
}

/// Shorthand: AST-oracle ends.
std::set<size_t> astEnds(const std::string &Pattern,
                         const std::string &Input) {
  Result<Regex> Re = parseRegex(Pattern);
  EXPECT_TRUE(Re.ok()) << Pattern;
  return astMatchEnds(*Re, Input);
}

} // namespace

TEST(Builder, SingleSymbol) {
  Nfa A = buildFor("a");
  EXPECT_EQ(A.numStates(), 2u);
  EXPECT_EQ(A.numTransitions(), 1u);
  EXPECT_FALSE(A.hasEpsilons());
}

TEST(Builder, ConcatAlternateProduceEpsilons) {
  Nfa A = buildFor("ab|c");
  EXPECT_TRUE(A.hasEpsilons());
  EXPECT_EQ(simulateNfa(A, "xabx"), (std::set<size_t>{3}));
  EXPECT_EQ(simulateNfa(A, "c"), (std::set<size_t>{1}));
}

TEST(Builder, BoundedRepeatExpansion) {
  // a{2,4} on "aaaaa": ends wherever 2..4 consecutive a's finish.
  EXPECT_EQ(nfaEnds("a{2,4}", "aaaaa"), (std::set<size_t>{2, 3, 4, 5}));
  EXPECT_EQ(nfaEnds("a{3}", "aaa"), (std::set<size_t>{3}));
  EXPECT_EQ(nfaEnds("a{3}", "aa"), (std::set<size_t>{}));
  EXPECT_EQ(nfaEnds("(ab){2}", "abab"), (std::set<size_t>{4}));
}

TEST(Builder, UnboundedRepeats) {
  EXPECT_EQ(nfaEnds("ab*", "abbb"), (std::set<size_t>{1, 2, 3, 4}));
  EXPECT_EQ(nfaEnds("ab+", "abbb"), (std::set<size_t>{2, 3, 4}));
  EXPECT_EQ(nfaEnds("a{2,}", "aaaa"),
            (std::set<size_t>{2, 3, 4})); // every run of >= 2
  EXPECT_EQ(nfaEnds("(ab){2,}", "ababab"), (std::set<size_t>{4, 6}));
}

TEST(Builder, RepeatBoundCapRejected) {
  BuildOptions Options;
  Options.MaxRepeatBound = 10;
  Result<Regex> Re = parseRegex("a{3,11}");
  ASSERT_TRUE(Re.ok());
  Result<Nfa> A = buildNfa(*Re, Options);
  EXPECT_FALSE(A.ok());
  EXPECT_NE(A.diag().Message.find("MaxRepeatBound"), std::string::npos);
}

TEST(Builder, CompactLoopModeOverapproximates) {
  // Ablation mode: a{2,3} degrades to a+; the language is a superset.
  BuildOptions Compact;
  Compact.ExpandBoundedRepeats = false;
  Result<Regex> Re = parseRegex("xa{2,3}y");
  ASSERT_TRUE(Re.ok());
  Result<Nfa> A = buildNfa(*Re, Compact);
  ASSERT_TRUE(A.ok());
  // Exact matches still match...
  EXPECT_EQ(simulateNfa(*A, "xaay"), (std::set<size_t>{4}));
  // ...and so does the over-approximated count (documented deviation).
  EXPECT_EQ(simulateNfa(*A, "xay"), (std::set<size_t>{3}));
  // Expanded mode is exact.
  EXPECT_EQ(nfaEnds("xa{2,3}y", "xay"), (std::set<size_t>{}));
}

TEST(Builder, CompactLoopHasFewerStates) {
  BuildOptions Compact;
  Compact.ExpandBoundedRepeats = false;
  Result<Regex> Re = parseRegex("(fg){2,8}");
  ASSERT_TRUE(Re.ok());
  Result<Nfa> Expanded = buildNfa(*Re);
  Result<Nfa> Loop = buildNfa(*Re, Compact);
  ASSERT_TRUE(Expanded.ok());
  ASSERT_TRUE(Loop.ok());
  EXPECT_GT(Expanded->numStates(), Loop->numStates());
}

TEST(Builder, AnchorsCarriedToAutomaton) {
  Nfa A = buildFor("^ab$");
  EXPECT_TRUE(A.anchoredStart());
  EXPECT_TRUE(A.anchoredEnd());
  EXPECT_EQ(simulateNfa(A, "ab"), (std::set<size_t>{2}));
  EXPECT_EQ(simulateNfa(A, "xab"), (std::set<size_t>{})); // not at start
  EXPECT_EQ(simulateNfa(A, "abx"), (std::set<size_t>{})); // not at end
}

//===----------------------------------------------------------------------===//
// Reference oracles agree with hand-computed cases
//===----------------------------------------------------------------------===//

TEST(Oracle, HandComputedCases) {
  EXPECT_EQ(astEnds("abc", "zabcabc"), (std::set<size_t>{4, 7}));
  EXPECT_EQ(astEnds("a|ab", "ab"), (std::set<size_t>{1, 2}));
  EXPECT_EQ(astEnds("a*", "aa"), (std::set<size_t>{1, 2}));   // non-empty only
  EXPECT_EQ(astEnds("a?", "b"), (std::set<size_t>{}));        // ε not reported
  EXPECT_EQ(astEnds("(a|b){2}", "ab"), (std::set<size_t>{2}));
  EXPECT_EQ(astEnds("", "abc"), (std::set<size_t>{}));        // ε-only RE
}

TEST(Oracle, EpsilonHeavyRepeatTermination) {
  // (a?)* and (a?){3,} have ε-matching bodies; the fixpoint must terminate
  // and still report the non-empty matches.
  EXPECT_EQ(astEnds("(a?)*", "aa"), (std::set<size_t>{1, 2}));
  EXPECT_EQ(astEnds("(a?){3,}", "a"), (std::set<size_t>{1}));
  EXPECT_EQ(nfaEnds("(a?)*", "aa"), (std::set<size_t>{1, 2}));
}

TEST(Oracle, AnchoredSemantics) {
  Result<Regex> Re = parseRegex("^ab");
  ASSERT_TRUE(Re.ok());
  EXPECT_EQ(astMatchEnds(*Re, "abab"), (std::set<size_t>{2}));
  Result<Regex> ReEnd = parseRegex("ab$");
  ASSERT_TRUE(ReEnd.ok());
  EXPECT_EQ(astMatchEnds(*ReEnd, "abab"), (std::set<size_t>{4}));
}

//===----------------------------------------------------------------------===//
// Optimization passes preserve the language
//===----------------------------------------------------------------------===//

TEST(Passes, EpsilonRemovalPreservesLanguage) {
  const char *Patterns[] = {"ab|cd", "(a|b)*c", "a{2,4}b?", "x.*y",
                            "(ab)+|c{3}"};
  const char *Inputs[] = {"abcd", "ababcc", "aaaab", "xzzy", "ababccc"};
  for (const char *Pattern : Patterns) {
    Nfa Raw = buildFor(Pattern);
    Nfa Clean = removeEpsilons(Raw);
    EXPECT_FALSE(Clean.hasEpsilons());
    for (const char *Input : Inputs)
      EXPECT_EQ(simulateNfa(Raw, Input), simulateNfa(Clean, Input))
          << Pattern << " on " << Input;
  }
}

TEST(Passes, FoldMultiplicityMergesParallelArcs) {
  // (a|b|c) folds to one [abc] arc (Fig. 5b): alternation exits are
  // bisimilar, merging them turns the branches into parallel arcs which
  // foldMultiplicity unions into a class.
  Nfa Final = optimizeForMerging(buildFor("(a|b|c)x"));
  // After the full pipeline: states {0,1,2}, arcs 0-[abc]->1, 1-x->2.
  EXPECT_EQ(Final.numStates(), 3u);
  EXPECT_EQ(Final.numTransitions(), 2u);
  bool FoundClass = false;
  for (const Transition &T : Final.transitions())
    if (T.Label == SymbolSet::of("abc"))
      FoundClass = true;
  EXPECT_TRUE(FoundClass);
}

TEST(Passes, BisimulationMergesEquivalentExits) {
  // a(x|y)z: both branch exits behave identically (single z arc to final).
  Nfa NoEps = removeEpsilons(buildFor("a(x|y)z"));
  Nfa Merged = mergeBisimilarStates(NoEps);
  EXPECT_LT(Merged.numStates(), NoEps.numStates());
  // Language unchanged.
  EXPECT_EQ(simulateNfa(Merged, "baxzc"), (std::set<size_t>{4}));
  EXPECT_EQ(simulateNfa(Merged, "ayz"), (std::set<size_t>{3}));
  EXPECT_EQ(simulateNfa(Merged, "az"), (std::set<size_t>{}));
}

TEST(Passes, BisimulationKeepsDistinctFutures) {
  // xa vs yb: the states after x and after y have different futures and
  // must not merge.
  Nfa Final = optimizeForMerging(buildFor("xa|yb"));
  EXPECT_EQ(simulateNfa(Final, "xa"), (std::set<size_t>{2}));
  EXPECT_EQ(simulateNfa(Final, "xb"), (std::set<size_t>{}));
  EXPECT_EQ(simulateNfa(Final, "yb"), (std::set<size_t>{2}));
  EXPECT_EQ(simulateNfa(Final, "ya"), (std::set<size_t>{}));
}

TEST(Passes, CompactDropsUnreachableAndDead) {
  Nfa A;
  StateId S0 = A.addState();
  StateId S1 = A.addState();
  StateId Dead = A.addState();        // reachable, no path to final
  StateId Unreachable = A.addState(); // not reachable at all
  A.setInitial(S0);
  A.addFinal(S1);
  A.addTransition(S0, S1, SymbolSet::singleton('a'));
  A.addTransition(S0, Dead, SymbolSet::singleton('b'));
  A.addTransition(Unreachable, S1, SymbolSet::singleton('c'));
  Nfa Out = compactReachable(A);
  EXPECT_EQ(Out.numStates(), 2u);
  EXPECT_EQ(Out.numTransitions(), 1u);
}

TEST(Passes, CompactKeepsInitialForEmptyLanguage) {
  Nfa A;
  StateId S0 = A.addState();
  A.addState();
  A.setInitial(S0);
  // No finals at all.
  Nfa Out = compactReachable(A);
  EXPECT_EQ(Out.numStates(), 1u);
  EXPECT_TRUE(Out.finals().empty());
  EXPECT_TRUE(simulateNfa(Out, "abc").empty());
}

TEST(Passes, FullPipelinePreservesLanguageOnSamples) {
  const char *Patterns[] = {"ab|cd",       "(a|b)*cc",  "a{2,4}[bc]?",
                            "x.*y",        "(ab)+|c{3}", "[a-d]{2}e",
                            "(a|b|c)(d|e)", "a+b+c+"};
  Rng Random(99);
  for (const char *Pattern : Patterns) {
    Nfa Raw = buildFor(Pattern);
    Nfa Optimized = optimizeForMerging(Raw);
    EXPECT_FALSE(Optimized.hasEpsilons());
    for (int Trial = 0; Trial < 20; ++Trial) {
      std::string Input = randomInput(Random, 24);
      EXPECT_EQ(simulateNfa(Raw, Input), simulateNfa(Optimized, Input))
          << Pattern << " on " << Input;
    }
  }
}

//===----------------------------------------------------------------------===//
// Property tests: AST oracle == ε-NFA simulation == optimized simulation
//===----------------------------------------------------------------------===//

struct OracleAgreementParam {
  uint64_t Seed;
};

class OracleAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleAgreement, RandomPatternsAgreeAcrossLayers) {
  Rng Random(GetParam());
  for (int Round = 0; Round < 12; ++Round) {
    std::string Pattern = randomPattern(Random);
    Result<Regex> Re = parseRegex(Pattern);
    ASSERT_TRUE(Re.ok()) << Pattern;
    Result<Nfa> Built = buildNfa(*Re);
    ASSERT_TRUE(Built.ok()) << Pattern;
    Nfa Optimized = optimizeForMerging(*Built);
    for (int Trial = 0; Trial < 6; ++Trial) {
      std::string Input = randomInput(Random, 16);
      std::set<size_t> FromAst = astMatchEnds(*Re, Input);
      std::set<size_t> FromRaw = simulateNfa(*Built, Input);
      std::set<size_t> FromOpt = simulateNfa(Optimized, Input);
      EXPECT_EQ(FromAst, FromRaw) << Pattern << " on " << Input << " ast "
                                  << formatEnds(FromAst) << " raw "
                                  << formatEnds(FromRaw);
      EXPECT_EQ(FromRaw, FromOpt) << Pattern << " on " << Input;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleAgreement,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233));
