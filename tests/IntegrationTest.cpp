//===- IntegrationTest.cpp - dataset-scale end-to-end tests -------------------===//
//
// Part of the mfsa project. MIT License.
//
// Crosses the whole stack at realistic scale: standard-dataset subsets are
// compiled, merged at several factors, serialized through ANML, executed by
// all three engines, and checked for mutual agreement and against the NFA
// simulation oracle.
//
//===----------------------------------------------------------------------===//

#include "anml/Anml.h"
#include "compiler/Pipeline.h"
#include "engine/DfaEngine.h"
#include "engine/Imfant.h"
#include "engine/Parallel.h"
#include "engine/SparseImfant.h"
#include "fsa/Determinize.h"
#include "fsa/Reference.h"
#include "workload/Datasets.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <map>

using namespace mfsa;
using namespace mfsa::test;

namespace {

/// First \p Count rules of a standard dataset.
std::vector<std::string> datasetSlice(const char *Abbrev, size_t Count) {
  const DatasetSpec *Spec = findDataset(Abbrev);
  EXPECT_NE(Spec, nullptr);
  std::vector<std::string> Rules = generateRuleset(*Spec);
  Rules.resize(std::min(Count, Rules.size()));
  return Rules;
}

std::map<uint32_t, std::set<size_t>>
runEngine(const ImfantEngine &Engine, const std::string &Input) {
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  Engine.run(Input, Recorder);
  std::map<uint32_t, std::set<size_t>> Ends;
  for (const auto &[Rule, End] : Recorder.matches())
    Ends[Rule].insert(static_cast<size_t>(End));
  return Ends;
}

} // namespace

class DatasetIntegration : public ::testing::TestWithParam<const char *> {};

TEST_P(DatasetIntegration, MergedMatchesPerRuleSimulation) {
  // 40 rules, 4 KB planted stream: merged iMFAnt vs per-rule NFA simulation.
  const DatasetSpec &Spec = *findDataset(GetParam());
  std::vector<std::string> Rules = datasetSlice(GetParam(), 40);
  std::string Stream = generateStream(Spec, Rules, 4096);

  CompileOptions Options;
  Options.MergingFactor = 0;
  Options.EmitAnml = false;
  Result<CompileArtifacts> Artifacts = compileRuleset(Rules, Options);
  ASSERT_TRUE(Artifacts.ok());
  ASSERT_EQ(Artifacts->Mfsas[0].verify(), "");

  ImfantEngine Engine(Artifacts->Mfsas[0]);
  std::map<uint32_t, std::set<size_t>> Got = runEngine(Engine, Stream);

  std::map<uint32_t, std::set<size_t>> Expected;
  for (size_t I = 0; I < Rules.size(); ++I) {
    std::set<size_t> Ends =
        simulateNfa(Artifacts->OptimizedFsas[I], Stream);
    if (!Ends.empty())
      Expected[static_cast<uint32_t>(I)] = Ends;
  }
  EXPECT_EQ(Got, Expected) << GetParam();
}

TEST_P(DatasetIntegration, AnmlRoundTripAtScale) {
  std::vector<std::string> Rules = datasetSlice(GetParam(), 60);
  CompileOptions Options;
  Options.MergingFactor = 20;
  Result<CompileArtifacts> Artifacts = compileRuleset(Rules, Options);
  ASSERT_TRUE(Artifacts.ok());
  ASSERT_EQ(Artifacts->Mfsas.size(), 3u);
  for (size_t I = 0; I < Artifacts->Mfsas.size(); ++I) {
    Result<Mfsa> Back = readAnml(Artifacts->AnmlDocs[I]);
    ASSERT_TRUE(Back.ok()) << Back.diag().render();
    EXPECT_EQ(writeAnml(*Back, "x"), writeAnml(Artifacts->Mfsas[I], "x"));
  }
}

TEST_P(DatasetIntegration, AllEnginesAgree) {
  const DatasetSpec &Spec = *findDataset(GetParam());
  std::vector<std::string> Rules = datasetSlice(GetParam(), 25);
  std::string Stream = generateStream(Spec, Rules, 2048, /*SeedSalt=*/3);

  CompileOptions Options;
  Options.MergingFactor = 0;
  Options.EmitAnml = false;
  Result<CompileArtifacts> Artifacts = compileRuleset(Rules, Options);
  ASSERT_TRUE(Artifacts.ok());
  const Mfsa &Z = Artifacts->Mfsas[0];

  // Dense iMFAnt.
  ImfantEngine Dense(Z);
  auto FromDense = runEngine(Dense, Stream);

  // Sparse iMFAnt.
  SparseImfantEngine Sparse(Z);
  MatchRecorder SparseRecorder(MatchRecorder::Mode::Collect);
  Sparse.run(Stream, SparseRecorder);
  std::map<uint32_t, std::set<size_t>> FromSparse;
  for (const auto &[Rule, End] : SparseRecorder.matches())
    FromSparse[Rule].insert(static_cast<size_t>(End));
  EXPECT_EQ(FromDense, FromSparse);

  // Union DFA.
  std::vector<uint32_t> Ids(Rules.size());
  for (size_t I = 0; I < Ids.size(); ++I)
    Ids[I] = static_cast<uint32_t>(I);
  DeterminizeOptions Capped;
  Capped.MaxStates = 1u << 16;
  Result<Dfa> D = determinize(Artifacts->OptimizedFsas, Ids, Capped);
  if (D.ok()) { // .*-heavy slices may legitimately explode
    DfaEngine DfaEng(*D);
    MatchRecorder DfaRecorder(MatchRecorder::Mode::Collect);
    DfaEng.run(Stream, DfaRecorder);
    std::map<uint32_t, std::set<size_t>> FromDfa;
    for (const auto &[Rule, End] : DfaRecorder.matches())
      FromDfa[Rule].insert(static_cast<size_t>(End));
    EXPECT_EQ(FromDense, FromDfa);
  }
}

TEST_P(DatasetIntegration, GroupedEnginesPartitionTheMatches) {
  // Merging factor M partitions rules over K MFSAs; the union of matches
  // must be invariant in M, and runParallel must agree with sequential.
  const DatasetSpec &Spec = *findDataset(GetParam());
  std::vector<std::string> Rules = datasetSlice(GetParam(), 30);
  std::string Stream = generateStream(Spec, Rules, 2048, /*SeedSalt=*/7);

  CompileOptions Options;
  Options.MergingFactor = 1;
  Options.EmitAnml = false;
  Result<CompileArtifacts> Artifacts = compileRuleset(Rules, Options);
  ASSERT_TRUE(Artifacts.ok());

  std::map<uint32_t, std::set<size_t>> Reference;
  for (uint32_t M : {1u, 7u, 0u}) {
    std::vector<Mfsa> Groups =
        mergeInGroups(Artifacts->OptimizedFsas, M);
    std::vector<ImfantEngine> Engines;
    for (const Mfsa &Z : Groups)
      Engines.emplace_back(Z);

    std::map<uint32_t, std::set<size_t>> Combined;
    uint64_t Total = 0;
    for (const ImfantEngine &Engine : Engines) {
      auto Part = runEngine(Engine, Stream);
      for (auto &[Rule, Ends] : Part) {
        auto &Slot = Combined[Rule];
        for (size_t E : Ends) {
          EXPECT_TRUE(Slot.insert(E).second)
              << "duplicate (rule,end) across groups";
          ++Total;
        }
      }
    }
    if (M == 1)
      Reference = Combined;
    else
      EXPECT_EQ(Combined, Reference) << "M=" << M;

    std::vector<MatchRecorder> Recorders(Engines.size());
    ParallelRunResult Parallel =
        runParallel(Engines, Stream, 4, &Recorders);
    EXPECT_EQ(Parallel.TotalMatches, Total) << "M=" << M;
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, DatasetIntegration,
                         ::testing::Values("BRO", "DS9", "PEN", "PRO", "RG1",
                                           "TCP"));

TEST(Integration, FullDatasetCompilesAndVerifies) {
  // Whole-dataset smoke: every standard dataset compiles at M=all, the MFSA
  // verifies, and the engine scans a stream without reporting zero matches.
  for (const DatasetSpec &Spec : standardDatasets()) {
    std::vector<std::string> Rules = generateRuleset(Spec);
    CompileOptions Options;
    Options.MergingFactor = 0;
    Options.EmitAnml = false;
    Result<CompileArtifacts> Artifacts = compileRuleset(Rules, Options);
    ASSERT_TRUE(Artifacts.ok()) << Spec.Abbrev;
    ASSERT_EQ(Artifacts->Mfsas.size(), 1u);
    EXPECT_EQ(Artifacts->Mfsas[0].verify(), "") << Spec.Abbrev;

    std::string Stream = generateStream(Spec, Rules, 16384);
    ImfantEngine Engine(Artifacts->Mfsas[0]);
    MatchRecorder Recorder;
    Engine.run(Stream, Recorder);
    EXPECT_GT(Recorder.total(), 0u) << Spec.Abbrev;
  }
}
