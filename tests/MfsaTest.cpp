//===- MfsaTest.cpp - unit + property tests for MFSA merging -----------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "mfsa/Merge.h"
#include "mfsa/Mfsa.h"

#include "fsa/Passes.h"
#include "fsa/Reference.h"
#include "regex/Parser.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace mfsa;
using namespace mfsa::test;

namespace {

/// Compiles patterns to optimized FSAs and merges them with sequential ids.
Mfsa mergePatterns(const std::vector<std::string> &Patterns,
                   const MergeOptions &Options = {},
                   MergeReport *Report = nullptr) {
  std::vector<Nfa> Fsas;
  std::vector<uint32_t> Ids;
  for (size_t I = 0; I < Patterns.size(); ++I) {
    Fsas.push_back(compileOptimized(Patterns[I]));
    Ids.push_back(static_cast<uint32_t>(I));
  }
  return mergeFsas(Fsas, Ids, Options, Report);
}

uint64_t sumStates(const std::vector<Nfa> &Fsas) {
  uint64_t Total = 0;
  for (const Nfa &A : Fsas)
    Total += A.numStates();
  return Total;
}

} // namespace

//===----------------------------------------------------------------------===//
// Mfsa model
//===----------------------------------------------------------------------===//

TEST(Mfsa, VerifyCatchesCorruption) {
  Mfsa Z(1);
  StateId S0 = Z.addState();
  StateId S1 = Z.addState();
  Z.rule(0).Initial = S0;
  Z.rule(0).Finals.push_back(S1);
  Z.addTransition(S0, S1, SymbolSet::singleton('a'), Z.makeBel(0));
  EXPECT_EQ(Z.verify(), "");

  // Duplicate parallel arc.
  Z.addTransition(S0, S1, SymbolSet::singleton('a'), Z.makeBel(0));
  EXPECT_NE(Z.verify(), "");
}

TEST(Mfsa, CompressionPercentFormula) {
  EXPECT_DOUBLE_EQ(compressionPercent(100, 25), 75.0);
  EXPECT_DOUBLE_EQ(compressionPercent(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(compressionPercent(0, 0), 0.0);
}

//===----------------------------------------------------------------------===//
// Merge outcomes of §III-A
//===----------------------------------------------------------------------===//

TEST(Merge, SingleAutomatonIsCopiedAsIs) {
  Nfa A = compileOptimized("ab[cd]");
  Mfsa Z = mergeFsas({A}, {7});
  EXPECT_EQ(Z.numStates(), A.numStates());
  EXPECT_EQ(Z.numTransitions(), A.numTransitions());
  EXPECT_EQ(Z.rule(0).GlobalId, 7u);
  EXPECT_EQ(Z.verify(), "");
  // Extracting rule 0 gives back the same language.
  Nfa Back = Z.extractRule(0);
  Rng Random(3);
  for (int I = 0; I < 10; ++I) {
    std::string Input = randomInput(Random, 12);
    EXPECT_EQ(simulateNfa(A, Input), simulateNfa(Back, Input));
  }
}

TEST(Merge, DisjointLanguagesNoSharedLabels) {
  // Outcome (a): nothing to merge; the MFSA is the disjoint union.
  Nfa A = compileOptimized("aa");
  Nfa B = compileOptimized("bb");
  Mfsa Z = mergeFsas({A, B}, {0, 1});
  EXPECT_EQ(Z.numStates(), A.numStates() + B.numStates());
  EXPECT_EQ(Z.numTransitions(), A.numTransitions() + B.numTransitions());
  EXPECT_EQ(Z.verify(), "");
}

TEST(Merge, IdenticalAutomataFullyOverlap) {
  // Outcome (c): merging an FSA with an identical one adds nothing.
  Nfa A = compileOptimized("ab(c|d)e");
  Nfa B = compileOptimized("ab(c|d)e");
  MergeReport Report;
  Mfsa Z = mergeFsas({A, B}, {0, 1}, MergeOptions(), &Report);
  EXPECT_EQ(Z.numStates(), A.numStates());
  EXPECT_EQ(Z.numTransitions(), A.numTransitions());
  EXPECT_EQ(Report.TransitionsShared, A.numTransitions());
  // Every transition belongs to both rules.
  for (const MfsaTransition &T : Z.transitions()) {
    EXPECT_TRUE(T.Bel.test(0));
    EXPECT_TRUE(T.Bel.test(1));
  }
  EXPECT_EQ(Z.verify(), "");
}

TEST(Merge, SharedPrefixIsMergedOnce) {
  // Outcome (b): common prefix "http" shared, tails distinct.
  Nfa A = compileOptimized("httpx");
  Nfa B = compileOptimized("httpy");
  Mfsa Z = mergeFsas({A, B}, {0, 1});
  // 6 + 6 separate states; prefix path (5 states) shared once.
  EXPECT_EQ(Z.verify(), "");
  EXPECT_LT(Z.numStates(), A.numStates() + B.numStates());
  EXPECT_EQ(Z.numStates(), 7u);
  EXPECT_EQ(Z.numTransitions(), 6u);
}

TEST(Merge, DisabledSearchCopiesDisjointly) {
  Nfa A = compileOptimized("httpx");
  Nfa B = compileOptimized("httpy");
  MergeOptions NoSearch;
  NoSearch.EnableSubpathSearch = false;
  Mfsa Z = mergeFsas({A, B}, {0, 1}, NoSearch);
  EXPECT_EQ(Z.numStates(), A.numStates() + B.numStates());
  EXPECT_EQ(Z.verify(), "");
}

TEST(Merge, CharClassMergeRequiresExactEquality) {
  // [ab] and [ab] merge; [ab] and [abc] must not (§III-A set Y).
  Mfsa Same = mergePatterns({"[ab]x", "[ab]y"});
  EXPECT_EQ(Same.numStates(), 4u); // shared [ab] arc + two tails

  Mfsa Different = mergePatterns({"[ab]x", "[abc]y"});
  EXPECT_EQ(Different.numStates(), 6u); // nothing shared
}

TEST(Merge, CharClassSharingCanBeDisabled) {
  MergeOptions NoCc;
  NoCc.MergeCharClasses = false;
  Mfsa Z = mergePatterns({"[ab]x", "[ab]y"}, NoCc);
  EXPECT_EQ(Z.numStates(), 6u); // classes never seed merges
}

TEST(Merge, Figure5bNoSpuriousLanguage) {
  // Paper Fig. 5b: a1 = (k|h)bc, a2 = kfd. After multiplicity folding the
  // first transition of a1 is [kh] != k, so the merge must not conflate
  // them, and the MFSA must not accept hfd for either rule.
  std::vector<std::string> Patterns = {"(k|h)bc", "kfd"};
  Mfsa Z = mergePatterns(Patterns);
  EXPECT_EQ(Z.verify(), "");
  for (RuleId Rule = 0; Rule < 2; ++Rule) {
    Nfa Sub = Z.extractRule(Rule);
    EXPECT_TRUE(simulateNfa(Sub, "hfd").empty())
        << "rule " << Rule << " wrongly accepts hfd";
  }
  // Sanity: the real languages still match.
  EXPECT_EQ(simulateNfa(Z.extractRule(0), "kbc"), (std::set<size_t>{3}));
  EXPECT_EQ(simulateNfa(Z.extractRule(0), "hbc"), (std::set<size_t>{3}));
  EXPECT_EQ(simulateNfa(Z.extractRule(1), "kfd"), (std::set<size_t>{3}));
}

TEST(Merge, Figure2WorkedExample) {
  // Paper Fig. 2: a1 = a[gj](lm|cd), a2 = kja[gj]cd. The shared sub-paths
  // (a[gj] prefix-of-a1 inside a2, and the cd tail) must compress the union.
  std::vector<Nfa> Fsas = {compileOptimized("a[gj](lm|cd)"),
                           compileOptimized("kja[gj]cd")};
  Mfsa Z = mergeFsas(Fsas, {0, 1});
  EXPECT_EQ(Z.verify(), "");
  EXPECT_LT(Z.numStates(), Fsas[0].numStates() + Fsas[1].numStates());
  // Some transition must belong to both rules (the merged a[gj] or cd path).
  bool SharedArc = false;
  for (const MfsaTransition &T : Z.transitions())
    if (T.Bel.test(0) && T.Bel.test(1))
      SharedArc = true;
  EXPECT_TRUE(SharedArc);
}

//===----------------------------------------------------------------------===//
// extractRule isomorphism / language preservation
//===----------------------------------------------------------------------===//

TEST(Merge, ExtractRulePreservesStructureCounts) {
  std::vector<Nfa> Fsas = {compileOptimized("abcde"), compileOptimized("abd"),
                           compileOptimized("abc[de]")};
  Mfsa Z = mergeFsas(Fsas, {0, 1, 2});
  for (RuleId Rule = 0; Rule < 3; ++Rule) {
    Nfa Sub = Z.extractRule(Rule);
    EXPECT_EQ(Sub.numStates(), Fsas[Rule].numStates()) << "rule " << Rule;
    EXPECT_EQ(Sub.numTransitions(), Fsas[Rule].numTransitions())
        << "rule " << Rule;
  }
}

TEST(Merge, AnchorsSurviveMerging) {
  std::vector<Nfa> Fsas = {compileOptimized("^abc"), compileOptimized("abc$"),
                           compileOptimized("abc")};
  Mfsa Z = mergeFsas(Fsas, {0, 1, 2});
  EXPECT_TRUE(Z.rule(0).AnchoredStart);
  EXPECT_FALSE(Z.rule(0).AnchoredEnd);
  EXPECT_TRUE(Z.rule(1).AnchoredEnd);
  EXPECT_FALSE(Z.rule(2).AnchoredStart);
  // extractRule re-attaches the anchors.
  EXPECT_EQ(simulateNfa(Z.extractRule(0), "xabc"), (std::set<size_t>{}));
  EXPECT_EQ(simulateNfa(Z.extractRule(2), "xabc"), (std::set<size_t>{4}));
}

//===----------------------------------------------------------------------===//
// Grouped merging (the paper's K = ceil(N/M) partitioning)
//===----------------------------------------------------------------------===//

TEST(MergeGroups, GroupCountAndMembership) {
  std::vector<Nfa> Fsas;
  for (int I = 0; I < 7; ++I)
    Fsas.push_back(compileOptimized("abc"));
  std::vector<Mfsa> Groups = mergeInGroups(Fsas, 3);
  ASSERT_EQ(Groups.size(), 3u); // 3 + 3 + 1
  EXPECT_EQ(Groups[0].numRules(), 3u);
  EXPECT_EQ(Groups[1].numRules(), 3u);
  EXPECT_EQ(Groups[2].numRules(), 1u);
  // Global ids are assigned sequentially across groups.
  EXPECT_EQ(Groups[1].rule(0).GlobalId, 3u);
  EXPECT_EQ(Groups[2].rule(0).GlobalId, 6u);
}

TEST(MergeGroups, FactorZeroMeansAll) {
  std::vector<Nfa> Fsas = {compileOptimized("ab"), compileOptimized("cd"),
                           compileOptimized("ef")};
  std::vector<Mfsa> Groups = mergeInGroups(Fsas, 0);
  ASSERT_EQ(Groups.size(), 1u);
  EXPECT_EQ(Groups[0].numRules(), 3u);
}

TEST(MergeGroups, LargerMNeverIncreasesTotalStates) {
  // Monotone compression sanity on a synthetic similar family.
  std::vector<std::string> Patterns;
  for (int I = 0; I < 12; ++I)
    Patterns.push_back("getuser" + std::string(1, static_cast<char>('a' + I)) +
                       "[0-9]");
  std::vector<Nfa> Fsas;
  for (const std::string &P : Patterns)
    Fsas.push_back(compileOptimized(P));
  uint64_t Baseline = sumStates(Fsas);
  uint64_t PrevStates = Baseline;
  for (uint32_t M : {2u, 4u, 6u, 12u}) {
    std::vector<Mfsa> Groups = mergeInGroups(Fsas, M);
    MfsaSetStats Stats = computeSetStats(Groups);
    EXPECT_LE(Stats.TotalStates, PrevStates) << "M=" << M;
    PrevStates = Stats.TotalStates;
  }
  EXPECT_LT(PrevStates, Baseline / 2); // strong sharing in this family
}

//===----------------------------------------------------------------------===//
// Property test: per-rule language preserved for random rulesets
//===----------------------------------------------------------------------===//

class MergePreservesLanguages : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergePreservesLanguages, RandomRulesets) {
  Rng Random(GetParam());
  // Draw a small ruleset of random patterns, some duplicated to force
  // overlap.
  std::vector<std::string> Patterns;
  unsigned Count = 3 + Random.nextBelow(4);
  for (unsigned I = 0; I < Count; ++I)
    Patterns.push_back(randomPattern(Random));
  if (Count > 2)
    Patterns.push_back(Patterns[0] + Patterns[1]);

  std::vector<Nfa> Fsas;
  std::vector<uint32_t> Ids;
  std::vector<Regex> Regexes;
  for (size_t I = 0; I < Patterns.size(); ++I) {
    Result<Regex> Re = parseRegex(Patterns[I]);
    ASSERT_TRUE(Re.ok()) << Patterns[I];
    Regexes.push_back(Re.take());
    Fsas.push_back(compileOptimized(Patterns[I]));
    Ids.push_back(static_cast<uint32_t>(I));
  }
  Mfsa Z = mergeFsas(Fsas, Ids);
  ASSERT_EQ(Z.verify(), "");

  for (size_t Rule = 0; Rule < Patterns.size(); ++Rule) {
    Nfa Sub = Z.extractRule(static_cast<RuleId>(Rule));
    for (int Trial = 0; Trial < 5; ++Trial) {
      std::string Input = randomInput(Random, 14);
      EXPECT_EQ(astMatchEnds(Regexes[Rule], Input), simulateNfa(Sub, Input))
          << "rule " << Patterns[Rule] << " on " << Input;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergePreservesLanguages,
                         ::testing::Values(7, 11, 19, 23, 31, 41, 59, 71, 83,
                                           97));
