//===- DifferentialTest.cpp - cross-engine differential harness --------------===//
//
// Part of the mfsa project. MIT License.
//
// Runs the same seeded rulesets and inputs through every execution engine the
// library ships — symbol-major iMFAnt, state-major sparse iMFAnt, the union
// DFA, the stride-2 DFA, and the literal prefilter — plus the brute-force AST
// oracle, and asserts identical per-rule match-end sets. Everything derives
// from one deterministic RNG seed, so any failure reproduces from the
// (ruleset, input, seed) triple printed in the assertion message.
//
// The DFA-family engines are best-effort by design: subset construction can
// blow past its state budget and stride pairing past its table budget. The
// harness then skips those two engines for that ruleset and still
// cross-checks the rest — a silent skip of *all* engines is impossible since
// the iMFAnt pair and the oracle always run.
//
// The static cost analyzer rides along on every case: the Engine::Auto plan
// is built and run like a sixth engine (same oracle assertion), and the
// analyzer's activation-width bound is asserted to dominate the dense
// engine's observed peak active rules and frontier on every input at every
// SIMD level — an end-to-end soundness check of boundActivationWidth.
//
// A seventh leg runs the input-parallel executor (engine/InputParallel.h)
// over the dense engine on every case, asserting both the oracle match set
// and that the per-chunk speculative frontiers stay within the static
// width bound — the soundness fact the executor's speculation relies on.
//
//===----------------------------------------------------------------------===//

#include "analysis/CostModel.h"
#include "analysis/Planner.h"
#include "engine/DfaEngine.h"
#include "engine/Imfant.h"
#include "engine/InputParallel.h"
#include "engine/MultiStride.h"
#include "engine/PlannedEngine.h"
#include "engine/Prefilter.h"
#include "engine/SparseImfant.h"
#include "fsa/Determinize.h"
#include "mfsa/Merge.h"
#include "support/SimdDispatch.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

using namespace mfsa;
using namespace mfsa::test;

namespace {

using RuleEnds = std::map<uint32_t, std::set<size_t>>;

std::string formatCase(uint64_t Seed,
                       const std::vector<std::string> &Patterns,
                       const std::string &Input) {
  return "seed=" + std::to_string(Seed) +
         " ruleset=" + formatPatterns(Patterns) + " input=\"" + Input + "\"";
}

/// Restores the env-resolved SIMD level on scope exit so a failing ASSERT
/// inside checkRuleset cannot leak a pinned level into later tests.
struct SimdLevelGuard {
  ~SimdLevelGuard() { simd::resetToEnv(); }
};

/// Compiles \p Patterns into every engine and checks each \p Input against
/// the AST oracle under every available SIMD dispatch level (the oracle is
/// computed once per input; only the engines re-run per level). \p Seed only
/// labels failures.
void checkRuleset(uint64_t Seed, const std::vector<std::string> &Patterns,
                  const std::vector<std::string> &Inputs) {
  std::vector<Nfa> Fsas;
  std::vector<uint32_t> Ids;
  for (size_t I = 0; I < Patterns.size(); ++I) {
    Fsas.push_back(compileOptimized(Patterns[I]));
    Ids.push_back(static_cast<uint32_t>(I));
  }
  std::vector<Mfsa> MergedVec;
  MergedVec.push_back(mergeFsas(Fsas, Ids));
  const Mfsa &Merged = MergedVec.front();
  ASSERT_EQ(Merged.verify(), "") << formatPatterns(Patterns);

  ImfantEngine Imfant(Merged);
  SparseImfantEngine Sparse(Merged);

  // Static analyzer cross-checks (analysis/CostModel.h): the sound
  // activation-width bound must dominate what the dense engine actually
  // observes on every input at every SIMD level, and the Auto-planned
  // engine must agree with the oracle like every fixed engine.
  const WidthBound Width = boundActivationWidth(Merged);
  EnginePlan Plan = planMfsas(MergedVec, Patterns, 0);
  Result<PlannedEngineSet> Planned =
      PlannedEngineSet::create(Plan.Choice, MergedVec, Patterns);
  ASSERT_TRUE(Planned.ok()) << "planned engine " << engineName(Plan.Choice)
                            << ": " << Planned.diag().render() << " "
                            << formatPatterns(Patterns);

  Result<Dfa> UnionDfa = determinize(Fsas, Ids);
  std::optional<StridedDfa> Stride2;
  if (UnionDfa.ok()) {
    Result<StridedDfa> S2 = makeStride2(*UnionDfa);
    if (S2.ok())
      Stride2.emplace(std::move(*S2));
  }

  Result<PrefilterEngine> Prefilter = PrefilterEngine::create(Patterns);
  ASSERT_TRUE(Prefilter.ok()) << formatPatterns(Patterns);

  // Input-parallel leg: the chunked executor over the dense engine must
  // reproduce the sequential match set, and its speculative per-chunk
  // frontiers must stay inside the analyzer's static width bound.
  InputParallelOptions ParOpts;
  ParOpts.Threads = 3;
  ParOpts.MinChunkBytes = 1;
  ParOpts.Width = &Width;
  InputParallelRun Par(Imfant, ParOpts);

  SimdLevelGuard Guard;
  for (const std::string &Input : Inputs) {
    RuleEnds Expected = oracleRuleEnds(Patterns, Input);

    for (simd::Level Lvl : simd::availableLevels()) {
      ASSERT_TRUE(simd::setLevel(Lvl));
      std::string Tag = formatCase(Seed, Patterns, Input) +
                        " simd=" + simd::levelName(Lvl);

      {
        MatchRecorder Recorder(MatchRecorder::Mode::Collect);
        RunStats Stats;
        Imfant.run(Input, Recorder, &Stats);
        EXPECT_EQ(recorderEnds(Recorder), Expected) << "engine=imfant " << Tag;
        // Soundness of the static width bound against the observed run.
        EXPECT_GE(Width.MaxActiveRules, Stats.MaxActiveRules)
            << "width rules bound " << Tag;
        EXPECT_GE(Width.MaxActiveStates, Stats.MaxFrontier)
            << "width states bound " << Tag;
      }
      {
        MatchRecorder Recorder(MatchRecorder::Mode::Collect);
        Sparse.run(Input, Recorder);
        EXPECT_EQ(recorderEnds(Recorder), Expected) << "engine=sparse " << Tag;
      }
      if (UnionDfa.ok()) {
        DfaEngine Engine(*UnionDfa);
        MatchRecorder Recorder(MatchRecorder::Mode::Collect);
        Engine.run(Input, Recorder);
        EXPECT_EQ(recorderEnds(Recorder), Expected) << "engine=dfa " << Tag;
      }
      if (Stride2) {
        StridedDfaEngine Engine(*Stride2);
        MatchRecorder Recorder(MatchRecorder::Mode::Collect);
        Engine.run(Input, Recorder);
        EXPECT_EQ(recorderEnds(Recorder), Expected) << "engine=stride2 "
                                                    << Tag;
      }
      {
        MatchRecorder Recorder(MatchRecorder::Mode::Collect);
        Prefilter->run(Input, Recorder);
        EXPECT_EQ(recorderEnds(Recorder), Expected) << "engine=prefilter "
                                                    << Tag;
      }
      {
        MatchRecorder Recorder(MatchRecorder::Mode::Collect);
        Planned->run(Input, Recorder);
        EXPECT_EQ(recorderEnds(Recorder), Expected)
            << "engine=auto(" << engineName(Plan.Choice) << ") " << Tag;
      }
      {
        MatchRecorder Recorder(MatchRecorder::Mode::Collect);
        InputParallelStats ParStats;
        Par.run(Input, Recorder, &ParStats);
        EXPECT_EQ(recorderEnds(Recorder), Expected)
            << "engine=input-parallel " << Tag;
        EXPECT_GE(Width.MaxActiveStates, ParStats.MaxSpecFrontier)
            << "spec frontier bound " << Tag;
      }
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Seeded random rulesets: 30 seeds x 4 inputs = 120 differential cases.
//===----------------------------------------------------------------------===//

class DifferentialAllEngines : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialAllEngines, MatchSetsAgree) {
  const uint64_t Seed = GetParam();
  Rng Random(Seed);

  std::vector<std::string> Patterns;
  unsigned Count = 1 + Random.nextBelow(6);
  for (unsigned I = 0; I < Count; ++I)
    Patterns.push_back(randomPattern(Random));

  std::vector<std::string> Inputs;
  Inputs.push_back(""); // the degenerate stream, where nullable rules lurk
  for (int Trial = 0; Trial < 3; ++Trial)
    Inputs.push_back(randomInput(Random, 8 + Random.nextBelow(56)));

  checkRuleset(Seed, Patterns, Inputs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialAllEngines,
                         ::testing::Range<uint64_t>(9000, 9030));

//===----------------------------------------------------------------------===//
// Curated rulesets: shapes the random generator never emits (anchors, long
// literals that engage the prefilter, overlapping and duplicate rules).
//===----------------------------------------------------------------------===//

TEST(Differential, AnchoredRules) {
  Rng Random(4242);
  std::vector<std::string> Patterns = {"^ab", "ab$", "ab", "^a[bc]*d$"};
  std::vector<std::string> Inputs = {"abxab", "abcdab", ""};
  for (int Trial = 0; Trial < 3; ++Trial)
    Inputs.push_back(randomInput(Random, 24));
  checkRuleset(4242, Patterns, Inputs);
}

TEST(Differential, LiteralHeavyRules) {
  // Long required literals push rules onto the prefilter fast path; the
  // stride-2 DFA gets both parities since inputs have odd and even lengths.
  Rng Random(4243);
  std::vector<std::string> Patterns = {"abcde", "bcd(a|b)+", "cab{2,3}ca",
                                       "abcde"}; // duplicate on purpose
  std::vector<std::string> Inputs = {"abcdeabcde", "xbcdabcaabbca"};
  for (int Trial = 0; Trial < 4; ++Trial)
    Inputs.push_back(randomInput(Random, 31 + Trial));
  checkRuleset(4243, Patterns, Inputs);
}

TEST(Differential, SelfOverlappingRules) {
  Rng Random(4244);
  std::vector<std::string> Patterns = {"aa", "(ab)+", "a{2,4}b?"};
  std::vector<std::string> Inputs = {"aaaaab", "abababa"};
  for (int Trial = 0; Trial < 4; ++Trial)
    Inputs.push_back(randomInput(Random, 40));
  checkRuleset(4244, Patterns, Inputs);
}

//===----------------------------------------------------------------------===//
// Wide rulesets: everything above stays under 64 rules, where the iMFAnt
// engines take their single-word scalar fast path. These rule counts force
// multi-word activation sets (70 rules -> 2 words, 261 -> 5) so the fused
// AndInto/OrAndInto kernels — including the 256-bit main loop plus its tail —
// are what actually executes at each dispatch level.
//===----------------------------------------------------------------------===//

namespace {

/// \p Count deterministic patterns: every 2-byte literal over {a..e}, then
/// 3-byte literals, then a band of random shapes for operator coverage.
std::vector<std::string> widePatterns(size_t Count, uint64_t Seed) {
  static const char Alphabet[] = "abcde";
  std::vector<std::string> Patterns;
  for (int A = 0; A < 5 && Patterns.size() < Count; ++A)
    for (int B = 0; B < 5 && Patterns.size() < Count; ++B)
      Patterns.push_back({Alphabet[A], Alphabet[B]});
  for (int A = 0; A < 5 && Patterns.size() < Count; ++A)
    for (int B = 0; B < 5 && Patterns.size() < Count; ++B)
      for (int C = 0; C < 5 && Patterns.size() < Count; ++C)
        Patterns.push_back({Alphabet[A], Alphabet[B], Alphabet[C]});
  Rng Random(Seed);
  while (Patterns.size() < Count)
    Patterns.push_back(randomPattern(Random, /*MaxDepth=*/3));
  return Patterns;
}

} // namespace

TEST(Differential, WideRulesetTwoWords) {
  Rng Random(4245);
  std::vector<std::string> Patterns = widePatterns(70, 4245);
  Patterns[68] = "^a[bc]+d";
  Patterns[69] = "(ab|cd)+e$";
  std::vector<std::string> Inputs = {""};
  for (int Trial = 0; Trial < 3; ++Trial)
    Inputs.push_back(randomInput(Random, 30 + Random.nextBelow(30)));
  checkRuleset(4245, Patterns, Inputs);
}

TEST(Differential, WideRulesetManyWords) {
  Rng Random(4246);
  std::vector<std::string> Patterns = widePatterns(261, 4246);
  std::vector<std::string> Inputs;
  for (int Trial = 0; Trial < 3; ++Trial)
    Inputs.push_back(randomInput(Random, 40 + Random.nextBelow(25)));
  checkRuleset(4246, Patterns, Inputs);
}
