//===- ObsTest.cpp - observability subsystem tests ---------------------------===//
//
// Part of the mfsa project. MIT License.
//
// Covers the metrics registry (registration semantics, histogram bucketing,
// byte-stable golden JSON), the compile-telemetry export (deterministic
// modulo wall-clock fields, which by convention end in `_ns`/`_ms` and are
// masked here), the engines' scan instrumentation (exact counters under a
// sampling period of 1), and the trace-sink event stream (activation /
// deactivation / match / step ordering and bookkeeping consistency).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "compiler/Pipeline.h"
#include "engine/Imfant.h"
#include "engine/Trace.h"
#include "mfsa/Merge.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace mfsa;
using namespace mfsa::test;

namespace {

/// Compiles + merges patterns into one MFSA (global ids = indices).
Mfsa mergePatterns(const std::vector<std::string> &Patterns) {
  std::vector<Nfa> Fsas;
  std::vector<uint32_t> Ids;
  for (size_t I = 0; I < Patterns.size(); ++I) {
    Fsas.push_back(compileOptimized(Patterns[I]));
    Ids.push_back(static_cast<uint32_t>(I));
  }
  return mergeFsas(Fsas, Ids);
}

/// Replaces the value of every metric whose name ends in `_ns` or `_ms`
/// with the placeholder "T", asserting along the way that each masked value
/// is a non-negative number. Everything else passes through untouched, so
/// masked exports from deterministic runs compare byte-for-byte.
std::string maskTimings(const std::string &Json, unsigned *Masked = nullptr) {
  std::istringstream In(Json);
  std::string Out, Line;
  while (std::getline(In, Line)) {
    size_t Open = Line.find('"');
    size_t Close = Open == std::string::npos ? std::string::npos
                                             : Line.find('"', Open + 1);
    if (Close != std::string::npos) {
      std::string Name = Line.substr(Open + 1, Close - Open - 1);
      bool Timing = Name.size() > 3 && (Name.compare(Name.size() - 3, 3,
                                                     "_ns") == 0 ||
                                        Name.compare(Name.size() - 3, 3,
                                                     "_ms") == 0);
      size_t Colon = Line.find(':', Close);
      if (Timing && Colon != std::string::npos) {
        std::string Value = Line.substr(Colon + 1);
        bool Comma = !Value.empty() && Value.back() == ',';
        if (Comma)
          Value.pop_back();
        double Parsed = std::stod(Value);
        EXPECT_GE(Parsed, 0.0) << Name << " went negative: " << Value;
        Line = Line.substr(0, Colon + 1) + " \"T\"" + (Comma ? "," : "");
        if (Masked)
          ++*Masked;
      }
    }
    Out += Line + "\n";
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Registry primitives
//===----------------------------------------------------------------------===//

TEST(Metrics, RegistrationIsIdempotent) {
  obs::MetricsRegistry Registry;
  obs::Counter &C1 = Registry.counter("x.count");
  obs::Counter &C2 = Registry.counter("x.count");
  EXPECT_EQ(&C1, &C2);

  obs::Histogram &H1 = Registry.histogram("x.dist", {1, 2, 4});
  // Bounds of a later registration are ignored; the original object wins.
  obs::Histogram &H2 = Registry.histogram("x.dist", {10, 20});
  EXPECT_EQ(&H1, &H2);
  EXPECT_EQ(H2.bounds(), (std::vector<uint64_t>{1, 2, 4}));
}

TEST(Metrics, ResetZeroesButKeepsHandles) {
  obs::MetricsRegistry Registry;
  obs::Counter &C = Registry.counter("x.count");
  obs::Gauge &G = Registry.gauge("x.size");
  obs::Histogram &H = Registry.histogram("x.dist", obs::pow2Buckets(3));
  C.add(5);
  G.set(-3);
  H.observe(7);
  Registry.reset();
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(G.value(), 0);
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
  EXPECT_EQ(H.max(), 0u);
  C.add(1); // cached handle still live after reset
  EXPECT_EQ(Registry.counter("x.count").value(), 1u);
}

TEST(Metrics, HistogramBucketing) {
  obs::Histogram H({1, 2, 4});
  H.observe(0); // slot 0 (bound 1 is inclusive upper)
  H.observe(1); // slot 0
  H.observe(2); // slot 1
  H.observe(3); // slot 2 (first bound >= 3 is 4)
  H.observe(4); // slot 2
  H.observe(9); // overflow slot
  EXPECT_EQ(H.numBuckets(), 4u);
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(2), 2u);
  EXPECT_EQ(H.bucketCount(3), 1u);
  EXPECT_EQ(H.count(), 6u);
  EXPECT_EQ(H.sum(), 19u);
  EXPECT_EQ(H.max(), 9u);
  EXPECT_NEAR(H.mean(), 19.0 / 6.0, 1e-9);
}

TEST(Metrics, Pow2Buckets) {
  EXPECT_EQ(obs::pow2Buckets(3), (std::vector<uint64_t>{1, 2, 4, 8}));
}

//===----------------------------------------------------------------------===//
// Golden JSON
//===----------------------------------------------------------------------===//

TEST(Metrics, GoldenJsonEmptyRegistry) {
  obs::MetricsRegistry Registry;
  EXPECT_EQ(Registry.toJson(), "{\n"
                               "  \"counters\": {},\n"
                               "  \"gauges\": {},\n"
                               "  \"histograms\": {}\n"
                               "}\n");
}

TEST(Metrics, GoldenJsonByteStable) {
  obs::MetricsRegistry Registry;
  Registry.counter("b.count").add(3);
  Registry.counter("a.count"); // registered but untouched -> exported as 0
  Registry.gauge("a.size").set(-7);
  obs::Histogram &H = Registry.histogram("a.dist", {1, 2, 4});
  H.observe(1);
  H.observe(3);
  H.observe(8);
  // One metric per line, sorted by name within each section — the contract
  // the bench JSON and the CI schema checker rely on.
  EXPECT_EQ(Registry.toJson(),
            "{\n"
            "  \"counters\": {\n"
            "    \"a.count\": 0,\n"
            "    \"b.count\": 3\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"a.size\": -7\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"a.dist\": {\"bounds\": [1,2,4], \"counts\": [1,0,1,1], "
            "\"count\": 3, \"sum\": 12, \"max\": 8, \"mean\": 4}\n"
            "  }\n"
            "}\n");
}

TEST(Metrics, TimingMaskerMasksOnlyTimingFields) {
  obs::MetricsRegistry Registry;
  Registry.counter("work.items").add(2);
  Registry.gauge("work.wall_ns").set(123456);
  Registry.gauge("work.elapsed_ms").set(9);
  unsigned Masked = 0;
  std::string Out = maskTimings(Registry.toJson(), &Masked);
  EXPECT_EQ(Masked, 2u);
  EXPECT_NE(Out.find("\"work.wall_ns\": \"T\""), std::string::npos);
  EXPECT_NE(Out.find("\"work.elapsed_ms\": \"T\""), std::string::npos);
  EXPECT_NE(Out.find("\"work.items\": 2"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Compile telemetry export
//===----------------------------------------------------------------------===//

TEST(CompileTelemetry, ExportIsByteStableModuloTimings) {
  const std::vector<std::string> Rules = {"ab+c", "x[yz]{2,3}", "(a|b)c"};
  auto Export = [&Rules]() {
    Result<CompileArtifacts> Artifacts = compileRuleset(Rules, {});
    EXPECT_TRUE(Artifacts.ok());
    obs::MetricsRegistry Registry;
    Artifacts->Telemetry.recordTo(Registry);
    return Registry.toJson();
  };
  unsigned MaskedA = 0, MaskedB = 0;
  std::string A = maskTimings(Export(), &MaskedA);
  std::string B = maskTimings(Export(), &MaskedB);
  EXPECT_EQ(A, B) << "compile telemetry not deterministic modulo timings";
  EXPECT_EQ(MaskedA, 6u)
      << "one wall_ns gauge per pipeline stage plus the validation proofs";
  EXPECT_EQ(MaskedA, MaskedB);

  // Every stage exports the full metric family.
  for (const char *Stage : {"front_end", "ast_to_fsa", "single_opt",
                            "merging", "back_end"})
    for (const char *Field : {"rules_in", "rules_out", "states_out",
                              "transitions_out"})
      EXPECT_NE(A.find("\"compile." + std::string(Stage) + "." + Field +
                       "\""),
                std::string::npos)
          << Stage << "." << Field;
  EXPECT_NE(A.find("\"compile.quarantined_rules\": 0"), std::string::npos);
  EXPECT_NE(A.find("\"compile.peak.merged_states\""), std::string::npos);
  EXPECT_NE(A.find("\"analysis.inclusion.proofs\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Scan instrumentation (compiled out in plain Release builds)
//===----------------------------------------------------------------------===//

TEST(ScanMetrics, ImfantCountersExactUnderFullSampling) {
  if (!obs::kScanMetricsCompiledIn)
    GTEST_SKIP() << "scan instrumentation compiled out (NDEBUG without "
                    "MFSA_METRICS=1)";
  obs::setScanSampleEvery(1);

  Mfsa Z = mergePatterns({"ab", "b+"});
  ImfantEngine Engine(Z);
  obs::MetricsRegistry Registry;
  Engine.setMetrics(&Registry);

  const std::string Input = "abbaba";
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  Engine.run(Input, Recorder);

  EXPECT_EQ(Registry.counter("imfant.bytes_scanned").value(), Input.size());
  EXPECT_EQ(Registry.counter("imfant.matches").value(), Recorder.total());
  EXPECT_GT(Registry.counter("imfant.transitions_touched").value(), 0u);
  // Sampling period 1 => one occupancy sample per consumed byte.
  EXPECT_EQ(Registry.histogram("imfant.frontier_size", {}).count(),
            Input.size());
  EXPECT_EQ(Registry.histogram("imfant.active_rules", {}).count(),
            Input.size());
  EXPECT_GT(Registry.gauge("imfant.states").value(), 0);
  EXPECT_EQ(Registry.gauge("imfant.rules").value(), 2);

  // A second run keeps accumulating into the same registry.
  Engine.run(Input, Recorder);
  EXPECT_EQ(Registry.counter("imfant.bytes_scanned").value(),
            2 * Input.size());

  // Detaching stops the flow.
  Engine.setMetrics(nullptr);
  Engine.run(Input, Recorder);
  EXPECT_EQ(Registry.counter("imfant.bytes_scanned").value(),
            2 * Input.size());
}

//===----------------------------------------------------------------------===//
// Trace sink event stream
//===----------------------------------------------------------------------===//

namespace {

/// Records the event stream and enforces the TraceSink ordering contract
/// inline: per step deactivations, then activations, then matches, then the
/// step summary; activations/deactivations must toggle coherently.
class CheckingSink : public TraceSink {
public:
  enum Phase { Deact = 0, Act = 1, Match = 2, Step = 3 };

  void onRuleDeactivated(RuleId Rule, uint64_t Offset) override {
    advance(Deact, Offset);
    EXPECT_TRUE(ActiveNow.count(Rule))
        << "rule " << Rule << " deactivated while inactive @" << Offset;
    ActiveNow.erase(Rule);
    Events.push_back("deact r" + std::to_string(Rule) + " @" +
                     std::to_string(Offset));
    ++Deactivations;
  }
  void onRuleActivated(RuleId Rule, uint64_t Offset) override {
    advance(Act, Offset);
    EXPECT_FALSE(ActiveNow.count(Rule))
        << "rule " << Rule << " activated twice @" << Offset;
    ActiveNow.insert(Rule);
    Events.push_back("act r" + std::to_string(Rule) + " @" +
                     std::to_string(Offset));
    ++Activations;
  }
  void onMatch(RuleId Rule, uint32_t GlobalId, uint64_t Offset) override {
    advance(Match, Offset);
    Events.push_back("match r" + std::to_string(Rule) + " g" +
                     std::to_string(GlobalId) + " @" +
                     std::to_string(Offset));
    ++Matches;
  }
  void onStep(uint64_t Offset, unsigned char /*Symbol*/,
              uint32_t /*ActiveStates*/, uint32_t ActiveRules) override {
    advance(Step, Offset);
    EXPECT_EQ(ActiveRules, ActiveNow.size())
        << "occupancy summary disagrees with the event stream @" << Offset;
    Events.push_back("step @" + std::to_string(Offset));
    CurrentPhase = -1; // next event belongs to the next step
    ++Steps;
  }

  std::vector<std::string> Events;
  std::set<RuleId> ActiveNow;
  unsigned Activations = 0, Deactivations = 0, Matches = 0, Steps = 0;

private:
  /// Phases may be skipped but never revisited within one step.
  void advance(int Phase, uint64_t Offset) {
    EXPECT_GE(Phase, CurrentPhase)
        << "event out of order @" << Offset << ": phase " << Phase
        << " after " << CurrentPhase;
    CurrentPhase = Phase;
  }

  int CurrentPhase = -1;
};

} // namespace

TEST(Trace, EventOrderingAndBookkeeping) {
  Mfsa Z = mergePatterns({"ab", "b+"});
  const std::string Input = "abba";

  CheckingSink Sink;
  replayTrace(Z, Input, Sink);

  EXPECT_EQ(Sink.Steps, Input.size()) << "one summary per consumed symbol";
  EXPECT_FALSE(Sink.Events.empty());
  EXPECT_EQ(Sink.Events.back(), "step @" + std::to_string(Input.size()));

  // The sink's running active set must agree with the trace snapshots.
  std::vector<TraceStep> Trace = traceActivation(Z, Input);
  ASSERT_EQ(Trace.size(), Input.size());
  std::set<RuleId> FinalActive;
  for (const TraceStep::ActiveEntry &Entry : Trace.back().Active)
    FinalActive.insert(Entry.ActiveRules.begin(), Entry.ActiveRules.end());
  EXPECT_EQ(Sink.ActiveNow, FinalActive);

  // Match events mirror the snapshot matches one-to-one.
  unsigned SnapshotMatches = 0;
  for (const TraceStep &Step : Trace)
    SnapshotMatches += static_cast<unsigned>(Step.Matches.size());
  EXPECT_EQ(Sink.Matches, SnapshotMatches);

  // "b+" self-extends: it must activate, survive, and deactivate when the
  // run of b's ends, so both event kinds fire on this input.
  EXPECT_GT(Sink.Activations, 0u);
  EXPECT_GT(Sink.Deactivations, 0u);
}

TEST(Trace, ReplayMatchesEngineSemantics) {
  Mfsa Z = mergePatterns({"ab", "b+", "a[ab]*b"});
  Rng Random(31337);
  for (int Trial = 0; Trial < 10; ++Trial) {
    std::string Input = randomInput(Random, 24);
    CheckingSink Sink;
    replayTrace(Z, Input, Sink);

    ImfantEngine Engine(Z);
    MatchRecorder Recorder;
    Engine.run(Input, Recorder);
    EXPECT_EQ(Sink.Matches, Recorder.total()) << "input " << Input;
  }
}

TEST(Trace, MetricsTraceSinkFoldsEventStream) {
  Mfsa Z = mergePatterns({"ab", "b+"});
  const std::string Input = "abbab";

  CheckingSink Reference;
  replayTrace(Z, Input, Reference);

  obs::MetricsRegistry Registry;
  MetricsTraceSink Sink(Registry);
  replayTrace(Z, Input, Sink);

  EXPECT_EQ(Registry.counter("trace.steps").value(), Reference.Steps);
  EXPECT_EQ(Registry.counter("trace.activations").value(),
            Reference.Activations);
  EXPECT_EQ(Registry.counter("trace.deactivations").value(),
            Reference.Deactivations);
  EXPECT_EQ(Registry.counter("trace.matches").value(), Reference.Matches);
  EXPECT_EQ(Registry.histogram("trace.active_rules", {}).count(),
            Reference.Steps);
  EXPECT_EQ(Registry.histogram("trace.active_states", {}).count(),
            Reference.Steps);
}
