//===- RegexTest.cpp - unit tests for the RE front-end -----------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "regex/Lexer.h"
#include "regex/Parser.h"

#include "fsa/Reference.h"
#include "mfsa/Merge.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace mfsa;

namespace {

/// Parses or aborts the test.
Regex parseOk(const std::string &Pattern) {
  Result<Regex> Re = parseRegex(Pattern);
  EXPECT_TRUE(Re.ok()) << Pattern << ": "
                       << (Re.ok() ? "" : Re.diag().render());
  if (!Re.ok())
    return Regex{std::make_unique<EmptyNode>(), false, false, Pattern};
  return Re.take();
}

/// Asserts the pattern is rejected and the diagnostic mentions \p Needle.
void expectError(const std::string &Pattern, const std::string &Needle) {
  Result<Regex> Re = parseRegex(Pattern);
  ASSERT_FALSE(Re.ok()) << Pattern << " unexpectedly parsed";
  EXPECT_NE(Re.diag().Message.find(Needle), std::string::npos)
      << "diagnostic '" << Re.diag().Message << "' lacks '" << Needle << "'";
}

} // namespace

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, PlainCharactersAndOperators) {
  Lexer L("ab*|(c)+d?");
  Result<std::vector<Token>> Tokens = L.tokenize();
  ASSERT_TRUE(Tokens.ok());
  std::vector<TokenKind> Kinds;
  for (const Token &T : *Tokens)
    Kinds.push_back(T.Kind);
  EXPECT_EQ(Kinds, (std::vector<TokenKind>{
                       TokenKind::Symbols, TokenKind::Symbols, TokenKind::Star,
                       TokenKind::Pipe, TokenKind::LParen, TokenKind::Symbols,
                       TokenKind::RParen, TokenKind::Plus, TokenKind::Symbols,
                       TokenKind::Question, TokenKind::End}));
}

TEST(Lexer, EscapesProduceSingletons) {
  Lexer L(R"(\n\t\\\.\x41\x7)");
  Result<std::vector<Token>> Tokens = L.tokenize();
  ASSERT_TRUE(Tokens.ok());
  ASSERT_EQ(Tokens->size(), 7u); // 6 symbols + End
  EXPECT_TRUE((*Tokens)[0].Symbols.contains('\n'));
  EXPECT_TRUE((*Tokens)[1].Symbols.contains('\t'));
  EXPECT_TRUE((*Tokens)[2].Symbols.contains('\\'));
  EXPECT_TRUE((*Tokens)[3].Symbols.contains('.'));
  EXPECT_TRUE((*Tokens)[4].Symbols.contains('A'));
  EXPECT_TRUE((*Tokens)[5].Symbols.contains('\x07'));
}

TEST(Lexer, ShorthandClasses) {
  Lexer L(R"(\d\w\s\D)");
  Result<std::vector<Token>> Tokens = L.tokenize();
  ASSERT_TRUE(Tokens.ok());
  EXPECT_EQ((*Tokens)[0].Symbols, SymbolSet::range('0', '9'));
  EXPECT_TRUE((*Tokens)[1].Symbols.contains('_'));
  EXPECT_EQ((*Tokens)[1].Symbols.count(), 26u + 26u + 10u + 1u);
  EXPECT_TRUE((*Tokens)[2].Symbols.contains(' '));
  EXPECT_EQ((*Tokens)[3].Symbols, SymbolSet::range('0', '9').complement());
}

TEST(Lexer, DotExcludesNewline) {
  Lexer L(".");
  Result<std::vector<Token>> Tokens = L.tokenize();
  ASSERT_TRUE(Tokens.ok());
  EXPECT_FALSE((*Tokens)[0].Symbols.contains('\n'));
  EXPECT_EQ((*Tokens)[0].Symbols.count(), 255u);
}

TEST(Lexer, BracketExpressions) {
  auto LexClass = [](const std::string &Pattern) {
    Lexer L(Pattern);
    Result<std::vector<Token>> Tokens = L.tokenize();
    EXPECT_TRUE(Tokens.ok()) << Pattern;
    return Tokens.ok() ? (*Tokens)[0].Symbols : SymbolSet();
  };
  EXPECT_EQ(LexClass("[abc]"), SymbolSet::of("abc"));
  EXPECT_EQ(LexClass("[a-f]"), SymbolSet::range('a', 'f'));
  EXPECT_EQ(LexClass("[a-f0-9]"),
            SymbolSet::range('a', 'f') | SymbolSet::range('0', '9'));
  EXPECT_EQ(LexClass("[^a]"), SymbolSet::singleton('a').complement());
  // ']' right after '[' (or '[^') is a literal.
  EXPECT_EQ(LexClass("[]a]"), SymbolSet::of("]a"));
  EXPECT_EQ(LexClass("[^]a]"), SymbolSet::of("]a").complement());
  // '-' at the edges is a literal dash.
  EXPECT_EQ(LexClass("[a-]"), SymbolSet::of("a-"));
  // Escapes inside classes.
  EXPECT_EQ(LexClass(R"([\]\\])"), SymbolSet::of("]\\"));
  EXPECT_EQ(LexClass(R"([\d])"), SymbolSet::range('0', '9'));
  // POSIX named classes.
  EXPECT_EQ(LexClass("[[:digit:]]"), SymbolSet::range('0', '9'));
  EXPECT_EQ(LexClass("[[:alpha:]]"),
            SymbolSet::range('a', 'z') | SymbolSet::range('A', 'Z'));
  EXPECT_EQ(LexClass("[[:xdigit:]]"), SymbolSet::range('0', '9') |
                                          SymbolSet::range('a', 'f') |
                                          SymbolSet::range('A', 'F'));
}

TEST(Lexer, RepeatBounds) {
  Lexer L("a{2}b{3,}c{4,7}");
  Result<std::vector<Token>> Tokens = L.tokenize();
  ASSERT_TRUE(Tokens.ok());
  const std::vector<Token> &T = *Tokens;
  ASSERT_EQ(T.size(), 7u);
  EXPECT_EQ(T[1].Kind, TokenKind::Repeat);
  EXPECT_EQ(T[1].RepeatMin, 2u);
  EXPECT_EQ(T[1].RepeatMax, 2u);
  EXPECT_EQ(T[3].RepeatMin, 3u);
  EXPECT_EQ(T[3].RepeatMax, RepeatUnbounded);
  EXPECT_EQ(T[5].RepeatMin, 4u);
  EXPECT_EQ(T[5].RepeatMax, 7u);
}

TEST(Lexer, Errors) {
  auto LexError = [](const std::string &Pattern) {
    Lexer L(Pattern);
    return !L.tokenize().ok();
  };
  EXPECT_TRUE(LexError("[abc"));       // unterminated class
  EXPECT_TRUE(LexError("a\\"));        // trailing backslash
  EXPECT_TRUE(LexError("[z-a]"));      // inverted range
  EXPECT_TRUE(LexError("a{,3}"));      // missing lower bound
  EXPECT_TRUE(LexError("a{3,2}"));     // inverted bounds
  EXPECT_TRUE(LexError("a{2"));        // unterminated bounds
  EXPECT_TRUE(LexError("[[:nope:]]")); // unknown named class
  EXPECT_TRUE(LexError("]"));          // unmatched ']'
  EXPECT_TRUE(LexError("\\x"));        // \x without digits
  EXPECT_TRUE(LexError("[]"));         // ']' literal, then unterminated
}

//===----------------------------------------------------------------------===//
// Parser structure
//===----------------------------------------------------------------------===//

TEST(Parser, PrecedenceAltConcatRepeat) {
  Regex Re = parseOk("ab|c*");
  ASSERT_EQ(Re.Root->kind(), AstKind::Alternate);
  const auto &Alt = static_cast<const AlternateNode &>(*Re.Root);
  ASSERT_EQ(Alt.children().size(), 2u);
  EXPECT_EQ(Alt.children()[0]->kind(), AstKind::Concat);
  EXPECT_EQ(Alt.children()[1]->kind(), AstKind::Repeat);
}

TEST(Parser, GroupingOverridesPrecedence) {
  Regex Re = parseOk("(ab|c)*");
  ASSERT_EQ(Re.Root->kind(), AstKind::Repeat);
  const auto &Rep = static_cast<const RepeatNode &>(*Re.Root);
  EXPECT_EQ(Rep.child().kind(), AstKind::Alternate);
  EXPECT_EQ(Rep.min(), 0u);
  EXPECT_TRUE(Rep.isUnbounded());
}

TEST(Parser, QuantifierStacking) {
  // (a{2}){3} style stacking and postfix chains parse left-to-right.
  Regex Re = parseOk("a{2}{3}");
  ASSERT_EQ(Re.Root->kind(), AstKind::Repeat);
  const auto &Outer = static_cast<const RepeatNode &>(*Re.Root);
  EXPECT_EQ(Outer.min(), 3u);
  EXPECT_EQ(Outer.child().kind(), AstKind::Repeat);
}

TEST(Parser, EmptyBranches) {
  Regex Re = parseOk("a|");
  ASSERT_EQ(Re.Root->kind(), AstKind::Alternate);
  const auto &Alt = static_cast<const AlternateNode &>(*Re.Root);
  ASSERT_EQ(Alt.children().size(), 2u);
  EXPECT_EQ(Alt.children()[1]->kind(), AstKind::Empty);

  Regex Empty = parseOk("");
  EXPECT_EQ(Empty.Root->kind(), AstKind::Empty);

  Regex Group = parseOk("()");
  EXPECT_EQ(Group.Root->kind(), AstKind::Empty);
}

TEST(Parser, Anchors) {
  Regex Re = parseOk("^abc$");
  EXPECT_TRUE(Re.AnchoredStart);
  EXPECT_TRUE(Re.AnchoredEnd);
  EXPECT_EQ(printAst(*Re.Root), "abc");

  Regex Start = parseOk("^ab");
  EXPECT_TRUE(Start.AnchoredStart);
  EXPECT_FALSE(Start.AnchoredEnd);

  Regex None = parseOk("ab");
  EXPECT_FALSE(None.AnchoredStart);
  EXPECT_FALSE(None.AnchoredEnd);

  expectError("a^b", "start of the pattern");
  expectError("a$b", "end of the pattern");
}

TEST(Parser, Errors) {
  expectError("(", "expected ')'");
  expectError(")", "unmatched ')'");
  expectError("*a", "no preceding expression");
  expectError("a|*", "no preceding expression");
  expectError("(*)", "no preceding expression");
  expectError("()*", "quantifier applies to nothing");
}

TEST(Parser, StrayRightBraceIsLiteral) {
  Regex Re = parseOk("a}b");
  EXPECT_EQ(printAst(*Re.Root), "a\\}b"); // printer escapes defensively
}

//===----------------------------------------------------------------------===//
// AST printer & clone
//===----------------------------------------------------------------------===//

TEST(Ast, PrintRoundTripsThroughParser) {
  const char *Patterns[] = {
      "abc",         "a|b|c",     "(ab|cd)*e",   "a[b-f]{2,4}c",
      "x.*y",        "(a|b)?c+",  "[^a-z]{3}",   "a{2,}",
      "(a(b(c)))d",  "a|",        "[abc]|[def]", "\\x41\\n",
  };
  for (const char *Pattern : Patterns) {
    Regex First = parseOk(Pattern);
    std::string Printed = printAst(*First.Root);
    Regex Second = parseOk(Printed);
    EXPECT_EQ(Printed, printAst(*Second.Root))
        << "printer not stable for " << Pattern;
  }
}

TEST(Ast, CloneIsDeepAndEqualPrinted) {
  Regex Re = parseOk("(ab|c[d-f]){2,5}x*");
  Regex Copy = Re.clone();
  EXPECT_EQ(printAst(*Re.Root), printAst(*Copy.Root));
  EXPECT_NE(Re.Root.get(), Copy.Root.get());
}

TEST(Ast, CountNodes) {
  Regex Re = parseOk("ab|c");
  // Alternate(Concat(a, b), c) = 1 + (1 + 2) + 1.
  EXPECT_EQ(printAst(*Re.Root), "ab|c");
  EXPECT_EQ(countAstNodes(*Re.Root), 5u);
}

//===----------------------------------------------------------------------===//
// Print/re-parse round-trip property test
//===----------------------------------------------------------------------===//

class PrintRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

// Random ASTs through print -> re-parse must (a) reach a printer fixpoint,
// (b) denote the same language per the AST oracle, and (c) compile to an
// engine that agrees with that oracle. Seeded so failures reproduce.
TEST_P(PrintRoundTripProperty, RandomAstsSurvivePrintAndReparse) {
  Rng Random(GetParam());
  for (int Case = 0; Case < 25; ++Case) {
    std::string Pattern = test::randomPattern(Random);
    Regex First = parseOk(Pattern);
    std::string Printed = printAst(*First.Root);
    Regex Second = parseOk(Printed);
    EXPECT_EQ(Printed, printAst(*Second.Root))
        << "printer not stable for seed=" << GetParam() << " pattern "
        << Pattern;

    Mfsa Z = mergeFsas({test::compileOptimized(Printed)}, {0});
    ImfantEngine Engine(Z);
    for (int Trial = 0; Trial < 3; ++Trial) {
      std::string Input = test::randomInput(Random, 16);
      std::set<size_t> Original = astMatchEnds(First, Input);
      EXPECT_EQ(Original, astMatchEnds(Second, Input))
          << "language changed by round-trip: seed=" << GetParam()
          << " pattern " << Pattern << " -> " << Printed << " input "
          << Input;
      MatchRecorder Recorder(MatchRecorder::Mode::Collect);
      Engine.run(Input, Recorder);
      std::set<size_t> EngineEnds;
      for (const auto &[Rule, End] : Recorder.matches())
        EngineEnds.insert(static_cast<size_t>(End));
      EXPECT_EQ(EngineEnds, Original)
          << "engine disagrees with oracle: seed=" << GetParam()
          << " pattern " << Printed << " input " << Input;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrintRoundTripProperty,
                         ::testing::Values(211, 223, 227, 229, 233, 239, 241,
                                           251));
