//===- InclusionTest.cpp - antichain inclusion/equivalence prover tests ------===//
//
// Part of the mfsa project. MIT License.
//
// Three groups:
//   - Inclusion/Equivalence: hand-picked pairs with known relations, raw
//     ε-NFAs against their optimized forms, the resource-limit path.
//   - Counterexamples: every refutation's witness word must replay as a
//     real language difference through the independent acceptsWord oracle.
//   - Properties: seeded random patterns — optimization preserves the
//     language, and L(P) ⊆ L(P|Q) by construction.
//
//===----------------------------------------------------------------------===//

#include "analysis/Inclusion.h"

#include "fsa/Builder.h"
#include "fsa/Passes.h"
#include "regex/Parser.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace mfsa;
using namespace mfsa::test;

namespace {

/// Parses + builds the raw Thompson ε-NFA; aborts the test on error.
Nfa buildRaw(const std::string &Pattern) {
  Result<Regex> Re = parseRegex(Pattern);
  EXPECT_TRUE(Re.ok()) << Pattern;
  Result<Nfa> Built = buildNfa(*Re);
  EXPECT_TRUE(Built.ok()) << Pattern;
  return Built.take();
}

/// Asserts L(A) ⊆ L(B) was refuted and the witness really separates the
/// languages (accepted by A, rejected by B) per the replay oracle.
void expectRefuted(const Nfa &A, const Nfa &B, const InclusionResult &R) {
  ASSERT_EQ(R.Status, InclusionStatus::NotIncluded);
  EXPECT_TRUE(acceptsWord(A, R.Counterexample))
      << "witness not accepted by the left operand";
  EXPECT_FALSE(acceptsWord(B, R.Counterexample))
      << "witness accepted by the right operand";
}

} // namespace

//===----------------------------------------------------------------------===//
// Inclusion on known pairs
//===----------------------------------------------------------------------===//

TEST(Inclusion, SubsetOfAlternation) {
  Nfa A = compileOptimized("a");
  Nfa B = compileOptimized("a|b");
  EXPECT_TRUE(checkInclusion(A, B).included());
  InclusionResult Back = checkInclusion(B, A);
  expectRefuted(B, A, Back);
  EXPECT_EQ(Back.Counterexample, "b"); // BFS => shortest witness
}

TEST(Inclusion, LiteralInStar) {
  Nfa A = compileOptimized("aaa");
  Nfa B = compileOptimized("a*");
  EXPECT_TRUE(checkInclusion(A, B).included());
  InclusionResult Back = checkInclusion(B, A);
  expectRefuted(B, A, Back);
  EXPECT_LT(Back.Counterexample.size(), 3u); // ε, "a" or "aa"
}

TEST(Inclusion, BoundedRepeatInUnbounded) {
  Nfa A = compileOptimized("(ab){2,4}");
  Nfa B = compileOptimized("(ab)+");
  EXPECT_TRUE(checkInclusion(A, B).included());
  expectRefuted(B, A, checkInclusion(B, A));
}

TEST(Inclusion, ClassesOverlapWithoutInclusion) {
  Nfa A = compileOptimized("[ab]x");
  Nfa B = compileOptimized("[bc]x");
  expectRefuted(A, B, checkInclusion(A, B));
  expectRefuted(B, A, checkInclusion(B, A));
}

TEST(Inclusion, EmptyLanguageIsIncludedInEverything) {
  // `a` intersected away: a rule whose finals are unreachable after
  // optimization still has states; build one by hand.
  Nfa Empty;
  StateId S0 = Empty.addState();
  Empty.addState(); // final, but no arc reaches it
  Empty.setInitial(S0);
  Empty.addFinal(1);
  Nfa B = compileOptimized("a");
  EXPECT_TRUE(checkInclusion(Empty, B).included());
  expectRefuted(B, Empty, checkInclusion(B, Empty));
}

TEST(Inclusion, EpsilonOnlyLanguage) {
  Nfa A = compileOptimized("a?");
  Nfa B = compileOptimized("a");
  InclusionResult R = checkInclusion(A, B);
  ASSERT_EQ(R.Status, InclusionStatus::NotIncluded);
  EXPECT_EQ(R.Counterexample, ""); // ε ∈ L(a?) \ L(a), the shortest witness
  EXPECT_TRUE(acceptsWord(A, ""));
  EXPECT_FALSE(acceptsWord(B, ""));
}

TEST(Inclusion, ResourceLimitIsInconclusive) {
  Nfa A = compileOptimized("(a|b)*abb");
  Nfa B = compileOptimized("(a|b)*");
  InclusionOptions Tiny;
  Tiny.MaxMacrostates = 1;
  InclusionResult R = checkInclusion(A, B, Tiny);
  EXPECT_EQ(R.Status, InclusionStatus::ResourceLimit);
  EXPECT_FALSE(R.conclusive());
  // With the default cap the same query is decided.
  EXPECT_TRUE(checkInclusion(A, B).included());
}

TEST(Inclusion, StatsAreAccountedFor) {
  Nfa A = compileOptimized("(a|b)*abb");
  Nfa B = compileOptimized("(a|b)*");
  InclusionResult R = checkInclusion(A, B);
  EXPECT_GT(R.Stats.MacrostatesExplored, 0u);
  EXPECT_GT(R.Stats.AntichainPeak, 0u);
  EXPECT_LE(R.Stats.AntichainPeak, R.Stats.MacrostatesExplored);
}

//===----------------------------------------------------------------------===//
// Equivalence
//===----------------------------------------------------------------------===//

TEST(Equivalence, CommutedAlternationsAreEqual) {
  EquivalenceResult R =
      checkEquivalence(compileOptimized("(a|b)*"), compileOptimized("(b|a)*"));
  EXPECT_TRUE(R.equal());
  EXPECT_EQ(R.counterexample(), nullptr);
}

TEST(Equivalence, BoundedRepeatExpansion) {
  EquivalenceResult R =
      checkEquivalence(compileOptimized("a{2,3}"), compileOptimized("aa|aaa"));
  EXPECT_TRUE(R.equal());
}

TEST(Equivalence, RawEpsilonNfaEqualsOptimized) {
  // The prover must close over ε natively: compare the raw Thompson
  // construction (ε-arcs everywhere) against the fully optimized pipeline
  // output of the same pattern.
  for (const char *Pattern : {"a(b|c)*d", "(ab|cd)+e?", "x{0,3}(y|z)"}) {
    Nfa Raw = buildRaw(Pattern);
    ASSERT_TRUE(Raw.hasEpsilons()) << Pattern;
    EquivalenceResult R = checkEquivalence(Raw, optimizeForMerging(Raw));
    EXPECT_TRUE(R.equal()) << Pattern;
  }
}

TEST(Equivalence, RefutationLocatesTheLargerSide) {
  Nfa A = compileOptimized("ab");
  Nfa B = compileOptimized("ab|ac");
  EquivalenceResult R = checkEquivalence(A, B);
  ASSERT_EQ(R.Status, EquivalenceStatus::NotEqual);
  // A ⊆ B holds; the witness must come from the B ⊄ A direction.
  ASSERT_EQ(R.counterexample(), &R.BInA);
  EXPECT_EQ(R.counterexample()->Counterexample, "ac");
}

//===----------------------------------------------------------------------===//
// acceptsWord (the replay oracle itself)
//===----------------------------------------------------------------------===//

TEST(AcceptsWord, WholeWordSemantics) {
  Nfa A = compileOptimized("ab");
  EXPECT_TRUE(acceptsWord(A, "ab"));
  EXPECT_FALSE(acceptsWord(A, "a"));   // prefix is not the word
  EXPECT_FALSE(acceptsWord(A, "abb")); // substring match is not acceptance
  EXPECT_FALSE(acceptsWord(A, ""));
}

TEST(AcceptsWord, ClosesOverEpsilons) {
  Nfa Raw = buildRaw("(a|b)*c?");
  EXPECT_TRUE(acceptsWord(Raw, ""));
  EXPECT_TRUE(acceptsWord(Raw, "abba"));
  EXPECT_TRUE(acceptsWord(Raw, "abc"));
  EXPECT_FALSE(acceptsWord(Raw, "cc"));
}

//===----------------------------------------------------------------------===//
// Properties over seeded random patterns
//===----------------------------------------------------------------------===//

TEST(InclusionProperty, OptimizationPreservesTheLanguage) {
  for (uint64_t Seed = 7100; Seed < 7130; ++Seed) {
    Rng Random(Seed);
    std::string Pattern = randomPattern(Random);
    Result<Regex> Re = parseRegex(Pattern);
    ASSERT_TRUE(Re.ok()) << Pattern;
    Result<Nfa> Raw = buildNfa(*Re);
    if (!Raw.ok())
      continue; // repeat bound over the builder limit; nothing to compare
    EquivalenceResult R = checkEquivalence(*Raw, optimizeForMerging(*Raw));
    ASSERT_TRUE(R.conclusive()) << "seed " << Seed << " pattern " << Pattern;
    EXPECT_TRUE(R.equal()) << "seed " << Seed << " pattern " << Pattern;
  }
}

TEST(InclusionProperty, OperandIsIncludedInItsAlternation) {
  for (uint64_t Seed = 7200; Seed < 7225; ++Seed) {
    Rng Random(Seed);
    std::string P = randomPattern(Random, /*MaxDepth=*/3);
    std::string Q = randomPattern(Random, /*MaxDepth=*/3);
    Result<Regex> ReP = parseRegex(P);
    Result<Regex> ReBoth = parseRegex("(" + P + ")|(" + Q + ")");
    ASSERT_TRUE(ReP.ok() && ReBoth.ok()) << P << " | " << Q;
    Result<Nfa> NfaP = buildNfa(*ReP);
    Result<Nfa> NfaBoth = buildNfa(*ReBoth);
    if (!NfaP.ok() || !NfaBoth.ok())
      continue;
    InclusionResult R =
        checkInclusion(optimizeForMerging(*NfaP), optimizeForMerging(*NfaBoth));
    ASSERT_TRUE(R.conclusive()) << "seed " << Seed;
    EXPECT_TRUE(R.included()) << "seed " << Seed << " P=" << P << " Q=" << Q;
  }
}

TEST(InclusionProperty, RefutationsReplayThroughTheOracle) {
  // Distinct random patterns are usually inequivalent; whenever the prover
  // says so, the witness must be a genuine one-sided word.
  unsigned Refutations = 0;
  for (uint64_t Seed = 7300; Seed < 7330; ++Seed) {
    Rng Random(Seed);
    std::string P = randomPattern(Random, /*MaxDepth=*/3);
    std::string Q = randomPattern(Random, /*MaxDepth=*/3);
    Result<Regex> ReP = parseRegex(P);
    Result<Regex> ReQ = parseRegex(Q);
    ASSERT_TRUE(ReP.ok() && ReQ.ok());
    Result<Nfa> NfaP = buildNfa(*ReP);
    Result<Nfa> NfaQ = buildNfa(*ReQ);
    if (!NfaP.ok() || !NfaQ.ok())
      continue;
    Nfa A = optimizeForMerging(*NfaP);
    Nfa B = optimizeForMerging(*NfaQ);
    EquivalenceResult R = checkEquivalence(A, B);
    const InclusionResult *Cex = R.counterexample();
    if (!Cex)
      continue;
    ++Refutations;
    const Nfa &Accepts = (Cex == &R.AInB) ? A : B;
    const Nfa &Rejects = (Cex == &R.AInB) ? B : A;
    EXPECT_TRUE(acceptsWord(Accepts, Cex->Counterexample))
        << "seed " << Seed << " P=" << P << " Q=" << Q;
    EXPECT_FALSE(acceptsWord(Rejects, Cex->Counterexample))
        << "seed " << Seed << " P=" << P << " Q=" << Q;
  }
  EXPECT_GT(Refutations, 5u) << "the seed band stopped producing refutations";
}
