//===- SupportTest.cpp - unit tests for the support library ------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/DynamicBitset.h"
#include "support/Result.h"
#include "support/Rng.h"
#include "support/StringUtil.h"
#include "support/SymbolSet.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

using namespace mfsa;

//===----------------------------------------------------------------------===//
// SymbolSet
//===----------------------------------------------------------------------===//

TEST(SymbolSet, EmptyAndSingleton) {
  SymbolSet Empty;
  EXPECT_TRUE(Empty.empty());
  EXPECT_EQ(Empty.count(), 0u);
  EXPECT_FALSE(Empty.isSingleton());

  SymbolSet A = SymbolSet::singleton('a');
  EXPECT_FALSE(A.empty());
  EXPECT_TRUE(A.isSingleton());
  EXPECT_EQ(A.count(), 1u);
  EXPECT_TRUE(A.contains('a'));
  EXPECT_FALSE(A.contains('b'));
  EXPECT_EQ(A.min(), 'a');
}

TEST(SymbolSet, RangeAndCount) {
  SymbolSet Digits = SymbolSet::range('0', '9');
  EXPECT_EQ(Digits.count(), 10u);
  EXPECT_TRUE(Digits.contains('5'));
  EXPECT_FALSE(Digits.contains('a'));
  EXPECT_EQ(Digits.min(), '0');

  EXPECT_TRUE(SymbolSet::range('b', 'a').empty());
  EXPECT_EQ(SymbolSet::range(0, 255).count(), 256u);
}

TEST(SymbolSet, SetAlgebra) {
  SymbolSet A = SymbolSet::range('a', 'f');
  SymbolSet B = SymbolSet::range('d', 'k');
  SymbolSet Union = A | B;
  SymbolSet Inter = A & B;
  EXPECT_EQ(Union.count(), 11u);
  EXPECT_EQ(Inter.count(), 3u);
  EXPECT_TRUE(A.intersects(B));
  EXPECT_FALSE(A.intersects(SymbolSet::singleton('z')));

  SymbolSet Comp = A.complement();
  EXPECT_EQ(Comp.count(), 256u - 6u);
  EXPECT_FALSE(Comp.contains('a'));
  EXPECT_TRUE(Comp.contains('z'));
  EXPECT_EQ((A | Comp).count(), 256u);
}

TEST(SymbolSet, EqualityHashOrdering) {
  SymbolSet A = SymbolSet::of("abc");
  SymbolSet B = SymbolSet::range('a', 'c');
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
  SymbolSet C = SymbolSet::of("abd");
  EXPECT_NE(A, C);
  // Ordering is total and consistent with equality.
  EXPECT_TRUE((A < C) != (C < A));
  EXPECT_FALSE(A < B);
  EXPECT_FALSE(B < A);
}

TEST(SymbolSet, ForEachIteratesInOrder) {
  SymbolSet S = SymbolSet::of("zax0");
  std::string Seen;
  S.forEach([&](unsigned char C) { Seen.push_back(static_cast<char>(C)); });
  EXPECT_EQ(Seen, "0axz");
}

TEST(SymbolSet, ToStringSingletonAndClass) {
  EXPECT_EQ(SymbolSet::singleton('a').toString(), "a");
  EXPECT_EQ(SymbolSet::range('a', 'd').toString(), "[a-d]");
  EXPECT_EQ(SymbolSet::of("ab").toString(), "[ab]");
  // Metacharacters inside classes are escaped.
  EXPECT_EQ(SymbolSet::singleton('\\').toString(), "\\\\");
  // Non-printables render as hex escapes.
  EXPECT_EQ(SymbolSet::singleton('\n').toString(), "\\x0a");
}

//===----------------------------------------------------------------------===//
// DynamicBitset
//===----------------------------------------------------------------------===//

TEST(DynamicBitset, BasicSetTestReset) {
  DynamicBitset B(130);
  EXPECT_EQ(B.size(), 130u);
  EXPECT_TRUE(B.none());
  B.set(0);
  B.set(64);
  B.set(129);
  EXPECT_TRUE(B.test(0));
  EXPECT_TRUE(B.test(64));
  EXPECT_TRUE(B.test(129));
  EXPECT_FALSE(B.test(1));
  EXPECT_EQ(B.count(), 3u);
  B.reset(64);
  EXPECT_FALSE(B.test(64));
  EXPECT_EQ(B.count(), 2u);
  B.clear();
  EXPECT_TRUE(B.none());
}

TEST(DynamicBitset, AlgebraAndIntersects) {
  DynamicBitset A(100), B(100);
  A.set(3);
  A.set(77);
  B.set(77);
  B.set(99);
  EXPECT_TRUE(A.intersects(B));
  DynamicBitset U = A | B;
  EXPECT_EQ(U.count(), 3u);
  DynamicBitset I = A & B;
  EXPECT_EQ(I.count(), 1u);
  EXPECT_TRUE(I.test(77));
  B.reset(77);
  EXPECT_FALSE(A.intersects(B));
}

TEST(DynamicBitset, ForEachOrder) {
  DynamicBitset B(200);
  B.set(190);
  B.set(2);
  B.set(65);
  std::vector<unsigned> Seen;
  B.forEach([&](unsigned Bit) { Seen.push_back(Bit); });
  EXPECT_EQ(Seen, (std::vector<unsigned>{2, 65, 190}));
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(Rng, DeterministicForSeed) {
  Rng A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_EQ(A.next(), B.next());
  // Different seeds diverge (overwhelmingly likely for a correct PRNG).
  Rng A2(42);
  EXPECT_NE(A2.next(), C.next());
}

TEST(Rng, BoundsRespected) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.nextBelow(13);
    EXPECT_LT(V, 13u);
    uint64_t W = R.nextInRange(5, 9);
    EXPECT_GE(W, 5u);
    EXPECT_LE(W, 9u);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Rng, RoughUniformity) {
  Rng R(11);
  std::vector<int> Buckets(10, 0);
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    ++Buckets[R.nextBelow(10)];
  for (int Count : Buckets) {
    EXPECT_GT(Count, N / 10 * 0.9);
    EXPECT_LT(Count, N / 10 * 1.1);
  }
}

//===----------------------------------------------------------------------===//
// StringUtil
//===----------------------------------------------------------------------===//

TEST(StringUtil, XmlEscapeRoundTrip) {
  std::string Raw = "a<b>&c\"d'e";
  std::string Escaped = xmlEscape(Raw);
  EXPECT_EQ(Escaped, "a&lt;b&gt;&amp;c&quot;d&apos;e");
  EXPECT_EQ(xmlUnescape(Escaped), Raw);
}

TEST(StringUtil, XmlUnescapeNumericEntities) {
  EXPECT_EQ(xmlUnescape("&#65;&#x42;"), "AB");
  EXPECT_EQ(xmlUnescape("&unknown;"), "&unknown;");
}

TEST(StringUtil, SplitTrimFormat) {
  EXPECT_EQ(splitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(splitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(trimString("  x y \t\n"), "x y");
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_TRUE(startsWith("transition", "trans"));
  EXPECT_FALSE(startsWith("tr", "trans"));
}

//===----------------------------------------------------------------------===//
// Result
//===----------------------------------------------------------------------===//

TEST(Result, ValueAndError) {
  Result<int> Ok(7);
  ASSERT_TRUE(Ok.ok());
  EXPECT_EQ(*Ok, 7);

  Result<int> Err = Result<int>::error("boom", 12);
  ASSERT_FALSE(Err.ok());
  EXPECT_EQ(Err.diag().Message, "boom");
  EXPECT_EQ(Err.diag().Offset, 12u);
  EXPECT_EQ(Err.diag().render(), "offset 12: boom");

  Diag NoPos("plain", static_cast<size_t>(-1));
  EXPECT_EQ(NoPos.render(), "plain");
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool Pool(4);
  std::atomic<int> Counter{0};
  for (int I = 0; I < 100; ++I)
    Pool.submit([&Counter] { Counter.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 100);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool Pool(2);
  std::atomic<int> Counter{0};
  for (int Batch = 0; Batch < 3; ++Batch) {
    for (int I = 0; I < 10; ++I)
      Pool.submit([&Counter] { Counter.fetch_add(1); });
    Pool.wait();
    EXPECT_EQ(Counter.load(), (Batch + 1) * 10);
  }
}

TEST(ThreadPool, OversubscriptionWorks) {
  // More threads than tasks and vice versa.
  ThreadPool Pool(16);
  std::atomic<int> Counter{0};
  for (int I = 0; I < 4; ++I)
    Pool.submit([&Counter] { Counter.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 4);
}
