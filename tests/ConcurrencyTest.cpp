//===- ConcurrencyTest.cpp - thread-safety suites (TSan targets) ------------===//
//
// Part of the mfsa project. MIT License.
//
// Exercises the concurrent machinery — ThreadPool and runParallel's
// cancellation/deadline paths — with real cross-thread interleavings so a
// ThreadSanitizer build (cmake -DMFSA_SANITIZE=thread, then `ctest -L tsan`)
// has races to find. The assertions double as plain correctness checks in
// uninstrumented builds.
//
//===----------------------------------------------------------------------===//

#include "engine/Parallel.h"
#include "mfsa/Merge.h"
#include "support/ThreadPool.h"

#include "TestHelpers.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace mfsa;
using namespace mfsa::test;

namespace {

/// Builds one single-rule engine per pattern (merging factor 1), the layout
/// the parallel executor distributes across workers.
std::vector<ImfantEngine> buildEngines(const std::vector<std::string> &Patterns) {
  std::vector<Nfa> Fsas;
  Fsas.reserve(Patterns.size());
  for (const std::string &P : Patterns)
    Fsas.push_back(compileOptimized(P));
  std::vector<Mfsa> Groups = mergeInGroups(Fsas, 1);
  std::vector<ImfantEngine> Engines;
  Engines.reserve(Groups.size());
  for (const Mfsa &Z : Groups)
    Engines.emplace_back(Z);
  return Engines;
}

/// Checks the structural invariants every ParallelRunResult must satisfy,
/// degraded or not.
void expectConsistent(const ParallelRunResult &Result, size_t NumEngines) {
  EXPECT_EQ(Result.Completed.size(), NumEngines);
  EXPECT_EQ(Result.Completed.count(), Result.NumCompleted);
  EXPECT_LE(Result.NumCompleted, NumEngines);
  EXPECT_EQ(Result.Degraded, Result.NumCompleted < NumEngines);
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolConcurrency, StressManyBatches) {
  ThreadPool Pool(8);
  std::atomic<unsigned> Counter{0};
  for (int Batch = 0; Batch < 20; ++Batch) {
    for (int Task = 0; Task < 100; ++Task)
      Pool.submit([&Counter] { Counter.fetch_add(1, std::memory_order_relaxed); });
    Pool.wait();
    EXPECT_EQ(Counter.load(), 100u * (Batch + 1));
  }
}

TEST(ThreadPoolConcurrency, ConcurrentSubmitters) {
  // submit() must be callable from any thread, interleaved with the workers
  // draining the queue — the shape a compiler-driving service produces.
  ThreadPool Pool(4);
  std::atomic<unsigned> Counter{0};
  std::vector<std::thread> Producers;
  Producers.reserve(4);
  for (int P = 0; P < 4; ++P)
    Producers.emplace_back([&Pool, &Counter] {
      for (int Task = 0; Task < 250; ++Task)
        Pool.submit(
            [&Counter] { Counter.fetch_add(1, std::memory_order_relaxed); });
    });
  for (std::thread &P : Producers)
    P.join();
  Pool.wait();
  EXPECT_EQ(Counter.load(), 1000u);
}

TEST(ThreadPoolConcurrency, DestructionDrainsQueue) {
  // Tasks already queued when the destructor runs must still execute
  // (ShuttingDown only stops workers once the queue is empty).
  std::atomic<unsigned> Counter{0};
  {
    ThreadPool Pool(2);
    for (int Task = 0; Task < 64; ++Task)
      Pool.submit([&Counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        Counter.fetch_add(1, std::memory_order_relaxed);
      });
  }
  EXPECT_EQ(Counter.load(), 64u);
}

//===----------------------------------------------------------------------===//
// runParallel: cancellation and deadline
//===----------------------------------------------------------------------===//

TEST(ParallelConcurrency, CancellationFromAnotherThread) {
  std::vector<ImfantEngine> Engines =
      buildEngines({"ab", "bc", "cd", "da", "ac", "bd", "[ab]c", "a[cd]"});
  Rng Random(97);
  std::string Input = randomInput(Random, 1u << 20);

  std::atomic<bool> Cancel{false};
  ParallelRunOptions Options;
  Options.CancelToken = &Cancel;
  Options.ChunkBytes = 1024; // honour the flip mid-input, not per-automaton

  std::thread Canceller([&Cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    Cancel.store(true, std::memory_order_relaxed);
  });
  ParallelRunResult Result = runParallel(Engines, Input, 4, nullptr, Options);
  Canceller.join();

  // The flip races the batch on purpose: either the batch finished first or
  // it degraded, and both outcomes must be internally consistent.
  expectConsistent(Result, Engines.size());
}

TEST(ParallelConcurrency, PreCancelledBatchCompletesNothing) {
  std::vector<ImfantEngine> Engines = buildEngines({"ab", "cd"});
  std::atomic<bool> Cancel{true};
  ParallelRunOptions Options;
  Options.CancelToken = &Cancel;
  ParallelRunResult Result =
      runParallel(Engines, "abcdabcd", 2, nullptr, Options);
  EXPECT_TRUE(Result.Degraded);
  EXPECT_EQ(Result.NumCompleted, 0u);
  EXPECT_EQ(Result.TotalMatches, 0u);
}

TEST(ParallelConcurrency, TightDeadlineStaysConsistent) {
  std::vector<ImfantEngine> Engines =
      buildEngines({"ab", "bc", "cd", "da", "ac", "bd"});
  Rng Random(98);
  std::string Input = randomInput(Random, 1u << 20);

  ParallelRunOptions Options;
  Options.DeadlineMs = 0.5;
  Options.ChunkBytes = 512;
  std::vector<MatchRecorder> Recorders(Engines.size());
  ParallelRunResult Result =
      runParallel(Engines, Input, 3, &Recorders, Options);
  expectConsistent(Result, Engines.size());

  // TotalMatches covers completed engines exactly.
  uint64_t CompletedTotal = 0;
  for (size_t I = 0; I < Engines.size(); ++I)
    if (Result.Completed.test(static_cast<unsigned>(I)))
      CompletedTotal += Recorders[I].total();
  EXPECT_EQ(Result.TotalMatches, CompletedTotal);
}

TEST(ParallelConcurrency, ConcurrentBatchesShareEngines) {
  // Engines are immutable after construction; two batches over the same
  // vector from different threads must not interfere.
  std::vector<ImfantEngine> Engines = buildEngines({"abc", "bcd", "cda"});
  Rng Random(99);
  std::string Input = randomInput(Random, 50000);

  uint64_t Sequential = 0;
  for (const ImfantEngine &Engine : Engines) {
    MatchRecorder Recorder;
    Engine.run(Input, Recorder);
    Sequential += Recorder.total();
  }

  std::vector<ParallelRunResult> Results(2);
  std::vector<std::thread> Batches;
  Batches.reserve(Results.size());
  for (size_t B = 0; B < Results.size(); ++B)
    Batches.emplace_back([&, B] {
      Results[B] = runParallel(Engines, Input, 2);
    });
  for (std::thread &B : Batches)
    B.join();
  for (const ParallelRunResult &Result : Results) {
    EXPECT_FALSE(Result.Degraded);
    EXPECT_EQ(Result.TotalMatches, Sequential);
  }
}

} // namespace
