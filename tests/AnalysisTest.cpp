//===- AnalysisTest.cpp - IR verifier + linter + diagnostics tests -----------===//
//
// Part of the mfsa project. MIT License.
//
// Three groups:
//   - Diagnostics: text/JSON rendering, golden strings.
//   - Verifier: clean automata at every level verify, and a corpus of
//     deliberately corrupted automata — one per invariant — each fires its
//     check with a positioned finding and without crashing.
//   - Lint: every catalog rule fires on its seeded fixture; the JSON report
//     over a fixture ruleset is golden.
//   - Lint cost model: the lint.cost.* checks (analysis/CostModel.h) fire on
//     crafted width-heavy / blowup-prone / literal-heavy rulesets with the
//     right exact-vs-heuristic method tags, and their JSON is golden.
//   - Planner: engine-name round trip and forced-engine pinning.
//
//===----------------------------------------------------------------------===//

#include "analysis/CostModel.h"
#include "analysis/Lint.h"
#include "analysis/Planner.h"
#include "analysis/Verifier.h"
#include "compiler/Pipeline.h"
#include "mfsa/Merge.h"

#include "TestHelpers.h"

#include <algorithm>

using namespace mfsa;
using namespace mfsa::test;

namespace {

Mfsa mergePatterns(const std::vector<std::string> &Patterns) {
  std::vector<Nfa> Fsas;
  Fsas.reserve(Patterns.size());
  for (const std::string &P : Patterns)
    Fsas.push_back(compileOptimized(P));
  std::vector<uint32_t> Ids(Fsas.size());
  for (uint32_t I = 0; I < Ids.size(); ++I)
    Ids[I] = I;
  return mergeFsas(Fsas, Ids);
}

/// True if any finding in \p Diags carries \p CheckId.
bool hasCheck(const DiagnosticEngine &Diags, const std::string &CheckId) {
  return std::any_of(Diags.findings().begin(), Diags.findings().end(),
                     [&](const Finding &F) { return F.CheckId == CheckId; });
}

/// Returns the first finding with \p CheckId; fails the test if absent.
const Finding &findCheck(const DiagnosticEngine &Diags,
                         const std::string &CheckId) {
  for (const Finding &F : Diags.findings())
    if (F.CheckId == CheckId)
      return F;
  ADD_FAILURE() << "no finding with check id " << CheckId << "\n"
                << Diags.renderText();
  static const Finding None;
  return None;
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(Diagnostics, TextRenderingIsPositioned) {
  DiagnosticEngine Diags;
  Diags.report(Severity::Error, "verify.nfa.transition-target",
               "transition target 9 out of range", SourceSpan::forElement(3));
  Diags.report(Severity::Warning, "lint.redos.nested-quantifier", "nested",
               SourceSpan::forPattern(2, 4), "unroll it");
  EXPECT_EQ(Diags.renderText(),
            "error: element 3: transition target 9 out of range "
            "[verify.nfa.transition-target]\n"
            "warning: rule 2, offset 4: nested (hint: unroll it) "
            "[lint.redos.nested-quantifier]\n");
  EXPECT_EQ(Diags.numErrors(), 1u);
  EXPECT_EQ(Diags.numWarnings(), 1u);
}

TEST(Diagnostics, JsonRenderingIsGolden) {
  DiagnosticEngine Diags;
  Diags.report(Severity::Error, "verify.mfsa.bel-width",
               "belonging set has width 5", SourceSpan::forElement(1));
  Diags.report(Severity::Note, "lint.subsumed-rule", "a \"quoted\" message",
               SourceSpan::forRule(7), "hint\nline");
  EXPECT_EQ(Diags.renderJson(),
            "{\"findings\":["
            "{\"severity\":\"error\",\"check\":\"verify.mfsa.bel-width\","
            "\"message\":\"belonging set has width 5\",\"element\":1},"
            "{\"severity\":\"note\",\"check\":\"lint.subsumed-rule\","
            "\"message\":\"a \\\"quoted\\\" message\",\"rule\":7,"
            "\"hint\":\"hint\\nline\"}"
            "],\"errors\":1,\"warnings\":0}");
}

TEST(Diagnostics, EmptyEngineRendersEmptyReport) {
  DiagnosticEngine Diags;
  EXPECT_TRUE(Diags.empty());
  EXPECT_EQ(Diags.renderText(), "");
  EXPECT_EQ(Diags.renderJson(), "{\"findings\":[],\"errors\":0,\"warnings\":0}");
}

//===----------------------------------------------------------------------===//
// Verifier: clean automata
//===----------------------------------------------------------------------===//

TEST(Verifier, CleanAutomataVerifyAtEveryLevel) {
  Result<Regex> Re = parseRegex("a(b|c)*d{2,4}");
  ASSERT_TRUE(Re.ok());
  Result<Nfa> Raw = buildNfa(*Re);
  ASSERT_TRUE(Raw.ok());
  EXPECT_EQ(verifyNfaError(*Raw, IrLevel::RawNfa), "");

  Nfa Optimized = optimizeForMerging(*Raw);
  EXPECT_EQ(verifyNfaError(Optimized, IrLevel::OptimizedFsa), "");

  Mfsa Z = mergePatterns({"a(b|c)*d", "abd", "acd"});
  EXPECT_EQ(verifyMfsaError(Z), "");
}

TEST(Verifier, RawLevelPermitsEpsilonsOptimizedDoesNot) {
  Result<Regex> Re = parseRegex("(ab)*");
  ASSERT_TRUE(Re.ok());
  Result<Nfa> Raw = buildNfa(*Re);
  ASSERT_TRUE(Raw.ok());
  ASSERT_TRUE(Raw->hasEpsilons());

  DiagnosticEngine AtRaw;
  EXPECT_TRUE(verifyNfa(*Raw, IrLevel::RawNfa, AtRaw));
  DiagnosticEngine AtOptimized;
  EXPECT_FALSE(verifyNfa(*Raw, IrLevel::OptimizedFsa, AtOptimized));
  EXPECT_TRUE(hasCheck(AtOptimized, "verify.nfa.epsilon"));
}

//===----------------------------------------------------------------------===//
// Verifier: corrupted-NFA corpus
//===----------------------------------------------------------------------===//

TEST(VerifierCorpus, EmptyAutomaton) {
  Nfa Empty;
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyNfa(Empty, IrLevel::RawNfa, Diags));
  EXPECT_TRUE(hasCheck(Diags, "verify.nfa.empty"));
}

TEST(VerifierCorpus, DanglingTransitionTarget) {
  Nfa A = compileOptimized("abc");
  A.transitions().back().To = A.numStates() + 41;
  A.canonicalize();
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyNfa(A, IrLevel::OptimizedFsa, Diags));
  const Finding &F = findCheck(Diags, "verify.nfa.transition-target");
  EXPECT_EQ(F.Sev, Severity::Error);
  EXPECT_TRUE(F.Span.hasElement()); // positioned at the offending transition
}

TEST(VerifierCorpus, DanglingTransitionSource) {
  Nfa A = compileOptimized("ab");
  A.transitions().front().From = A.numStates() + 3;
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyNfa(A, IrLevel::RawNfa, Diags));
  EXPECT_TRUE(hasCheck(Diags, "verify.nfa.transition-source"));
}

TEST(VerifierCorpus, InitialAndFinalOutOfRange) {
  Nfa A = compileOptimized("ab");
  A.setInitial(A.numStates() + 1);
  A.finals().push_back(A.numStates() + 9);
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyNfa(A, IrLevel::RawNfa, Diags));
  EXPECT_TRUE(hasCheck(Diags, "verify.nfa.initial-range"));
  EXPECT_TRUE(hasCheck(Diags, "verify.nfa.final-range"));
}

TEST(VerifierCorpus, UnsortedCoo) {
  Nfa A = compileOptimized("abcd");
  ASSERT_GE(A.numTransitions(), 2u);
  std::swap(A.transitions().front(), A.transitions().back());
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyNfa(A, IrLevel::OptimizedFsa, Diags));
  const Finding &F = findCheck(Diags, "verify.nfa.coo-order");
  EXPECT_TRUE(F.Span.hasElement());
}

TEST(VerifierCorpus, DuplicateCooEntry) {
  Nfa A = compileOptimized("ab");
  // Duplicate the first transition; re-sorting keeps the pair adjacent but
  // canonicalize() would have removed it, so insert by hand.
  Transition Dup = A.transitions().front();
  A.transitions().insert(A.transitions().begin(), Dup);
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyNfa(A, IrLevel::OptimizedFsa, Diags));
  EXPECT_TRUE(hasCheck(Diags, "verify.nfa.coo-duplicate"));
}

TEST(VerifierCorpus, UnsortedFinals) {
  Nfa A = compileOptimized("a|bb");
  // Append a duplicate of the first final: breaks sorted/unique finals.
  ASSERT_FALSE(A.finals().empty());
  A.finals().push_back(A.finals().front());
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyNfa(A, IrLevel::OptimizedFsa, Diags));
  EXPECT_TRUE(hasCheck(Diags, "verify.nfa.final-order"));
}

TEST(VerifierCorpus, UnreachableAndDeadStates) {
  Nfa A = compileOptimized("ab");
  // An island state unreachable from the initial state...
  StateId Island = A.addState();
  StateId Sink = A.addState();
  // ...and a reachable state that can never reach a final (dead).
  A.transitions().push_back({Island, Sink, SymbolSet::singleton('z')});
  A.transitions().push_back({0, Sink, SymbolSet::singleton('q')});
  A.canonicalize();
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyNfa(A, IrLevel::OptimizedFsa, Diags));
  EXPECT_TRUE(hasCheck(Diags, "verify.nfa.unreachable-state"));
  EXPECT_TRUE(hasCheck(Diags, "verify.nfa.dead-state"));
}

//===----------------------------------------------------------------------===//
// Verifier: corrupted-MFSA corpus
//===----------------------------------------------------------------------===//

TEST(VerifierCorpus, MfsaDanglingTransition) {
  Mfsa Z = mergePatterns({"ab", "ac"});
  Z.transitions().front().To = Z.numStates() + 17;
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyMfsa(Z, Diags));
  const Finding &F = findCheck(Diags, "verify.mfsa.transition-target");
  EXPECT_EQ(F.Sev, Severity::Error);
  EXPECT_TRUE(F.Span.hasElement());
  EXPECT_NE(verifyMfsaError(Z), "");
}

TEST(VerifierCorpus, MfsaEpsilonLabel) {
  Mfsa Z = mergePatterns({"ab", "ac"});
  Z.transitions().front().Label = SymbolSet();
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyMfsa(Z, Diags));
  EXPECT_TRUE(hasCheck(Diags, "verify.mfsa.epsilon-label"));
}

TEST(VerifierCorpus, MfsaBelWidthMismatch) {
  Mfsa Z = mergePatterns({"ab", "ac"});
  // An oversized activation/belonging set: the engines would copy its words
  // out of bounds. The verifier must flag it without ever reading the bits.
  Z.transitions().front().Bel = DynamicBitset(Z.numRules() + 3);
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyMfsa(Z, Diags));
  const Finding &F = findCheck(Diags, "verify.mfsa.bel-width");
  EXPECT_TRUE(F.Span.hasElement());
}

TEST(VerifierCorpus, MfsaEmptyBelongingSet) {
  Mfsa Z = mergePatterns({"ab", "ac"});
  Z.transitions().front().Bel.clear();
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyMfsa(Z, Diags));
  EXPECT_TRUE(hasCheck(Diags, "verify.mfsa.bel-empty"));
}

TEST(VerifierCorpus, MfsaDuplicateArc) {
  Mfsa Z = mergePatterns({"ab", "ac"});
  Z.transitions().push_back(Z.transitions().front());
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyMfsa(Z, Diags));
  EXPECT_TRUE(hasCheck(Diags, "verify.mfsa.duplicate-arc"));
}

TEST(VerifierCorpus, MfsaRuleStatesOutOfRange) {
  Mfsa Z = mergePatterns({"ab", "ac"});
  Z.rule(0).Initial = Z.numStates() + 1;
  Z.rule(1).Finals.push_back(Z.numStates() + 2);
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyMfsa(Z, Diags));
  EXPECT_TRUE(hasCheck(Diags, "verify.mfsa.rule-initial-range"));
  const Finding &F = findCheck(Diags, "verify.mfsa.rule-final-range");
  EXPECT_TRUE(F.Span.hasRule());
}

TEST(VerifierCorpus, MfsaGlobalIdCollision) {
  Mfsa Z = mergePatterns({"ab", "ac"});
  Z.rule(0).GlobalId = 7;
  Z.rule(1).GlobalId = 7;
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyMfsa(Z, Diags));
  EXPECT_TRUE(hasCheck(Diags, "verify.mfsa.global-id-collision"));
}

TEST(VerifierCorpus, MfsaDisconnectedRuleArc) {
  Mfsa Z = mergePatterns({"ab", "ac"});
  // An arc owned by rule 0 floating on an island: the injective relabeling
  // of Algorithm 1 can never produce this.
  StateId Island = Z.addState();
  StateId Sink = Z.addState();
  Z.addTransition(Island, Sink, SymbolSet::singleton('z'), Z.makeBel(0));
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyMfsa(Z, Diags));
  const Finding &F = findCheck(Diags, "verify.mfsa.rule-disconnected");
  EXPECT_TRUE(F.Span.hasRule());
}

//===----------------------------------------------------------------------===//
// Pipeline integration: --verify-each
//===----------------------------------------------------------------------===//

TEST(VerifyEach, CleanRulesetCompiles) {
  CompileOptions Options;
  Options.VerifyEach = true;
  Options.EmitAnml = false;
  Result<CompileArtifacts> Artifacts = compileRuleset(
      {"GET /[a-z]+", "POST /[a-z]+", "[0-9]{1,3}\\.[0-9]{1,3}"}, Options);
  ASSERT_TRUE(Artifacts.ok()) << Artifacts.diag().render();
  EXPECT_EQ(Artifacts->CompiledRuleIds.size(), 3u);
  for (const Mfsa &Z : Artifacts->Mfsas)
    EXPECT_EQ(verifyMfsaError(Z), "");
}

TEST(VerifyEach, DefaultFollowsBuildConfig) {
  CompileOptions Options;
  EXPECT_EQ(Options.VerifyEach, kVerifyEachDefault);
}

//===----------------------------------------------------------------------===//
// Lint
//===----------------------------------------------------------------------===//

TEST(Lint, CatalogRulesFireOnSeededFixtures) {
  LintOptions Options;
  DiagnosticEngine Diags;
  LintSummary Summary = lintRuleset(
      {
          "(a+)+b",        // nested quantifier
          "(a|aa)+x",      // ambiguous loop witness on the NFA
          "(a{99}){999}",  // expansion blowup (skipped from deeper layers)
          "ab(",           // parse error
          "foo[0-9]bar",   // duplicate pair...
          "foo[0-9]bar",   // ...
          ".*",            // universal
      },
      Options, Diags);
  EXPECT_EQ(Summary.RulesBroken, 1u);
  EXPECT_EQ(Summary.RulesAnalyzed, 5u); // 7 - parse error - blowup skip
  EXPECT_TRUE(hasCheck(Diags, "lint.redos.nested-quantifier"));
  EXPECT_TRUE(hasCheck(Diags, "lint.redos.ambiguous-loop"));
  EXPECT_TRUE(hasCheck(Diags, "lint.expansion.state-blowup"));
  EXPECT_TRUE(hasCheck(Diags, "lint.parse-error"));
  EXPECT_TRUE(hasCheck(Diags, "lint.duplicate-rule"));
  EXPECT_TRUE(hasCheck(Diags, "lint.language.universal"));
  const Finding &Parse = findCheck(Diags, "lint.parse-error");
  EXPECT_EQ(Parse.Span.Rule, 3u);
  const Finding &Dup = findCheck(Diags, "lint.duplicate-rule");
  EXPECT_EQ(Dup.Span.Rule, 5u);
}

TEST(Lint, EmptyLanguageRuleFlagged) {
  DiagnosticEngine Diags;
  lintRuleset({"a{0}"}, LintOptions(), Diags);
  EXPECT_TRUE(hasCheck(Diags, "lint.language.empty"));
}

TEST(Lint, CleanRulesetLintsClean) {
  DiagnosticEngine Diags;
  LintSummary Summary =
      lintRuleset({"GET /[a-z]+", "Host: [a-z0-9.-]+", "admin\\.php"},
                  LintOptions(), Diags);
  EXPECT_TRUE(Diags.empty()) << Diags.renderText();
  EXPECT_EQ(Summary.RulesAnalyzed, 3u);
}

TEST(Lint, MergedDuplicatesDetectedViaBelongingSets) {
  Mfsa Z = mergePatterns({"xy[ab]", "xy[ab]", "zz"});
  DiagnosticEngine Diags;
  lintMfsa(Z, LintOptions(), Diags);
  const Finding &F = findCheck(Diags, "lint.merge.identical-rules");
  EXPECT_EQ(F.Span.Rule, 1u); // GlobalId of the duplicate
}

TEST(Lint, MergedUnreachableStateDetected) {
  Mfsa Z = mergePatterns({"ab", "ac"});
  StateId Island = Z.addState();
  Z.addTransition(Island, Island, SymbolSet::singleton('z'), Z.makeBel(0));
  DiagnosticEngine Diags;
  lintMfsa(Z, LintOptions(), Diags);
  EXPECT_TRUE(hasCheck(Diags, "lint.merge.unreachable-state"));
}

TEST(Lint, ExactProverFindsStructurallyDifferentDuplicates) {
  // a{2,3} and aa|aaa denote the same language through different syntax;
  // the antichain prover decides the pair exactly.
  DiagnosticEngine Diags;
  lintRuleset({"a{2,3}", "aa|aaa"}, LintOptions(), Diags);
  const Finding &F = findCheck(Diags, "lint.duplicate-rule");
  EXPECT_EQ(F.Span.Rule, 1u);
  EXPECT_EQ(F.Method, "exact");
}

TEST(Lint, ExactSubsumptionProven) {
  // ab ⊆ a[bc]. The old heuristic oracle was blind to this pair (the
  // effective alphabets differ, so probing was skipped); the prover is not.
  DiagnosticEngine Diags;
  lintRuleset({"ab", "a[bc]"}, LintOptions(), Diags);
  const Finding &F = findCheck(Diags, "lint.subsumed-rule");
  EXPECT_EQ(F.Span.Rule, 0u);
  EXPECT_EQ(F.Method, "exact");
  EXPECT_NE(F.Message.find("inclusion proven"), std::string::npos)
      << F.Message;
}

TEST(Lint, DisablingExactPathRestoresHeuristicBlindness) {
  LintOptions Options;
  Options.ExactCheckMaxStates = 0; // heuristic oracle only
  DiagnosticEngine Diags;
  lintRuleset({"ab", "a[bc]"}, Options, Diags);
  EXPECT_FALSE(hasCheck(Diags, "lint.subsumed-rule")) << Diags.renderText();
}

TEST(Lint, JsonReportIsGolden) {
  // The exact --format=json document for a small fixture: field order,
  // escaping, and finding order are all contractual (docs/static-analysis.md).
  LintOptions Options;
  DiagnosticEngine Diags;
  lintRuleset({"(a+)+b", "foo", "foo"}, Options, Diags);
  EXPECT_EQ(
      Diags.renderJson(),
      "{\"findings\":["
      "{\"severity\":\"warning\",\"check\":\"lint.redos.nested-quantifier\","
      "\"message\":\"unbounded quantifier wraps a variable-iteration "
      "quantifier (catastrophic-ambiguity shape, e.g. (a+)+)\",\"rule\":0,"
      "\"hint\":\"make the inner repetition fixed-count or unroll the outer "
      "one\"},"
      "{\"severity\":\"warning\",\"check\":\"lint.duplicate-rule\","
      "\"message\":\"duplicate of rule 1: identical optimized automaton\","
      "\"rule\":2,\"method\":\"exact\","
      "\"hint\":\"remove one of the two rules\"}"
      "],\"errors\":0,\"warnings\":2}");
}

//===----------------------------------------------------------------------===//
// Lint: cost model (lint.cost.*, analysis/CostModel.h)
//===----------------------------------------------------------------------===//

TEST(LintCost, WidthHotspotFiresWithExactTag) {
  // All three rules are simultaneously active on "ab..." prefixes; with the
  // warn threshold lowered below that, the check must fire, and the
  // completed antichain search must tag the bound exact.
  std::vector<std::string> Patterns = {"a[ab]*b", "ab*", "[ab]{2,4}"};
  Mfsa Z = mergePatterns(Patterns);
  LintOptions Options;
  Options.CostWidthWarnRules = 2;
  DiagnosticEngine Diags;
  lintCost(Z, Patterns, Options, Diags);
  const Finding &F = findCheck(Diags, "lint.cost.width-hotspot");
  EXPECT_EQ(F.Sev, Severity::Warning);
  EXPECT_EQ(F.Method, "exact");
  EXPECT_NE(F.Message.find("simultaneously active"), std::string::npos)
      << F.Message;
}

TEST(LintCost, WidthHotspotHeuristicTagWhenBudgetExhausted) {
  // A one-macrostate budget cannot finish the reachability search, so the
  // analyzer falls back to the trivial (still sound) all-rules bound and
  // must say so via the method tag.
  Mfsa Z = mergePatterns({"a[ab]*b", "ab*", "[ab]{2,4}"});
  LintOptions Options;
  Options.CostWidthWarnRules = 2;
  Options.CostWidthMaxMacrostates = 1;
  DiagnosticEngine Diags;
  lintCost(Z, {}, Options, Diags);
  const Finding &F = findCheck(Diags, "lint.cost.width-hotspot");
  EXPECT_EQ(F.Method, "heuristic");
}

TEST(LintCost, DfaBlowupIsDemonstratedNotEstimated) {
  // Unanchored a[ab]{14}b needs ~2^14 subset states; a 64-state probe cap
  // is exceeded by construction, which makes the finding exact.
  Mfsa Z = mergePatterns({"a[ab]{14}b", "ab"});
  LintOptions Options;
  Options.CostDfaProbeMaxStates = 64;
  DiagnosticEngine Diags;
  lintCost(Z, {}, Options, Diags);
  const Finding &F = findCheck(Diags, "lint.cost.dfa-blowup");
  EXPECT_EQ(F.Sev, Severity::Warning);
  EXPECT_EQ(F.Method, "exact");
}

TEST(LintCost, NoBlowupFindingWhenProbeCompletes) {
  Mfsa Z = mergePatterns({"ab", "cd"});
  DiagnosticEngine Diags;
  lintCost(Z, {}, LintOptions(), Diags);
  EXPECT_FALSE(hasCheck(Diags, "lint.cost.dfa-blowup")) << Diags.renderText();
}

TEST(LintCost, PrefilterDefeatedNotesTheResidualRule) {
  // Three long-literal rules make the ruleset literal-heavy; the lone
  // literal-free rule forces the residual full scan and gets the note.
  std::vector<std::string> Patterns = {"foobar", "bazqux", "plugh42",
                                       "[ab]+"};
  Mfsa Z = mergePatterns(Patterns);
  DiagnosticEngine Diags;
  lintCost(Z, Patterns, LintOptions(), Diags);
  const Finding &F = findCheck(Diags, "lint.cost.prefilter-defeated");
  EXPECT_EQ(F.Sev, Severity::Note);
  EXPECT_EQ(F.Span.Rule, 3u);
  EXPECT_EQ(F.Method, "exact");
}

TEST(LintCost, JsonReportIsGolden) {
  // The exact JSON for the prefilter fixture: field order, method tag, and
  // message text are contractual (docs/static-analysis.md).
  std::vector<std::string> Patterns = {"foobar", "bazqux", "plugh42",
                                       "[ab]+"};
  Mfsa Z = mergePatterns(Patterns);
  DiagnosticEngine Diags;
  lintCost(Z, Patterns, LintOptions(), Diags);
  EXPECT_EQ(
      Diags.renderJson(),
      "{\"findings\":["
      "{\"severity\":\"note\",\"check\":\"lint.cost.prefilter-defeated\","
      "\"message\":\"rule has no required literal of length >= 3 in a "
      "literal-heavy ruleset (3/4 prefilterable); it forces the residual "
      "full scan\",\"rule\":3,\"method\":\"exact\","
      "\"hint\":\"anchor the rule on a distinctive literal, or exclude it "
      "from the prefiltered group\"}"
      "],\"errors\":0,\"warnings\":0}");
}

//===----------------------------------------------------------------------===//
// Planner (analysis/Planner.h)
//===----------------------------------------------------------------------===//

TEST(Planner, EngineNamesRoundTrip) {
  for (Engine E : {Engine::Auto, Engine::ImfantDense, Engine::ImfantSparse,
                   Engine::Dfa, Engine::StridedDfa, Engine::Prefilter}) {
    Engine Parsed;
    ASSERT_TRUE(engineFromName(engineName(E), Parsed)) << engineName(E);
    EXPECT_EQ(Parsed, E);
  }
  Engine Parsed;
  EXPECT_FALSE(engineFromName("hyperscan", Parsed));
}

TEST(Planner, ForcedEnginePinsChoiceButKeepsTrace) {
  std::vector<std::string> Patterns = {"foobar", "bazqux", "[ab]+c"};
  std::vector<Mfsa> Mfsas;
  Mfsas.push_back(mergePatterns(Patterns));
  PlannerOptions Options;
  Options.Force = Engine::ImfantSparse;
  EnginePlan Plan = planMfsas(Mfsas, Patterns, 0, Options);
  EXPECT_EQ(Plan.Choice, Engine::ImfantSparse);
  ASSERT_NE(Plan.chosen(), nullptr);
  // The trace still evaluates every engine so --explain-plan can show what
  // Auto would have picked.
  EXPECT_EQ(Plan.chosen()->Engines.size(), 5u);
  EXPECT_NE(Plan.explainJson().find("\"candidates\""), std::string::npos);
}

TEST(Planner, WidthBoundDominatesTrivialCases) {
  // One-rule automaton: the bound can never exceed one active rule.
  std::vector<std::string> Patterns = {"abc"};
  Mfsa Z = mergePatterns(Patterns);
  const WidthBound W = boundActivationWidth(Z);
  EXPECT_TRUE(W.Exact);
  EXPECT_EQ(W.MaxActiveRules, 1u);
  EXPECT_GE(W.MaxActiveStates, 1u);
}

} // namespace
