//===- AnmlTest.cpp - tests for the extended-ANML back-end -------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "anml/Anml.h"

#include "engine/Imfant.h"
#include "fsa/Passes.h"
#include "mfsa/Merge.h"
#include "regex/Parser.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace mfsa;
using namespace mfsa::test;

namespace {

Mfsa mergePatterns(const std::vector<std::string> &Patterns) {
  std::vector<Nfa> Fsas;
  std::vector<uint32_t> Ids;
  for (size_t I = 0; I < Patterns.size(); ++I) {
    Fsas.push_back(compileOptimized(Patterns[I]));
    Ids.push_back(static_cast<uint32_t>(I) + 10); // non-trivial global ids
  }
  return mergeFsas(Fsas, Ids);
}

/// Structural equality between two MFSAs after canonical serialization.
void expectEqualMfsa(const Mfsa &A, const Mfsa &B) {
  EXPECT_EQ(writeAnml(A, "cmp"), writeAnml(B, "cmp"));
}

} // namespace

TEST(Anml, WriteContainsDeclaredElements) {
  Mfsa Z = mergePatterns({"a[bc]d", "^ae$"});
  std::string Doc = writeAnml(Z, "unit");
  EXPECT_NE(Doc.find("<mfsa-network name=\"unit\""), std::string::npos);
  EXPECT_NE(Doc.find("rules=\"2\""), std::string::npos);
  EXPECT_NE(Doc.find("<rule id=\"0\" global-id=\"10\""), std::string::npos);
  EXPECT_NE(Doc.find("anchored-start=\"1\""), std::string::npos);
  EXPECT_NE(Doc.find("<transition from="), std::string::npos);
  EXPECT_NE(Doc.find("belongs="), std::string::npos);
}

TEST(Anml, RoundTripIdentity) {
  Mfsa Z = mergePatterns({"abc", "ab[cd]{2,3}", "x.*y", "(p|q)+r"});
  std::string Doc = writeAnml(Z, "rt");
  Result<Mfsa> Back = readAnml(Doc);
  ASSERT_TRUE(Back.ok()) << (Back.ok() ? "" : Back.diag().render());
  expectEqualMfsa(Z, *Back);
  EXPECT_EQ(Back->verify(), "");
}

TEST(Anml, RoundTripPreservesEngineBehaviour) {
  std::vector<std::string> Patterns = {"login[0-9]+", "log(in|out)",
                                       "^session="};
  Mfsa Z = mergePatterns(Patterns);
  Result<Mfsa> Back = readAnml(writeAnml(Z, "engine"));
  ASSERT_TRUE(Back.ok());

  ImfantEngine Before(Z), After(*Back);
  Rng Random(5);
  for (int Trial = 0; Trial < 5; ++Trial) {
    std::string Input = "session=login77logoutlogin" + randomInput(Random, 20);
    MatchRecorder A(MatchRecorder::Mode::Collect);
    MatchRecorder B(MatchRecorder::Mode::Collect);
    Before.run(Input, A);
    After.run(Input, B);
    EXPECT_EQ(A.matches(), B.matches());
  }
}

TEST(Anml, SymbolRangesEncodeCompactly) {
  Mfsa Z = mergePatterns({"[a-f]"});
  std::string Doc = writeAnml(Z, "sym");
  EXPECT_NE(Doc.find("symbols=\"61-66\""), std::string::npos);
}

TEST(Anml, AcceptsCommentsAndWhitespace) {
  Mfsa Z = mergePatterns({"ab"});
  std::string Doc = writeAnml(Z, "c");
  // Inject a comment and extra whitespace after the prolog.
  size_t Pos = Doc.find("?>") + 2;
  Doc.insert(Pos, "\n<!-- a comment -->\n   \n");
  Result<Mfsa> Back = readAnml(Doc);
  ASSERT_TRUE(Back.ok());
  expectEqualMfsa(Z, *Back);
}

TEST(Anml, RejectsMalformedDocuments) {
  auto Fails = [](const std::string &Doc, const std::string &Needle) {
    Result<Mfsa> R = readAnml(Doc);
    EXPECT_FALSE(R.ok()) << Doc;
    if (!R.ok())
      EXPECT_NE(R.diag().Message.find(Needle), std::string::npos)
          << "got: " << R.diag().Message;
  };

  Fails("", "expected <mfsa-network>");
  Fails("<wrong/>", "expected <mfsa-network>");
  Fails("<mfsa-network states=\"2\">", "malformed states/rules");
  // Out-of-range transition endpoint.
  Fails("<mfsa-network states=\"1\" rules=\"1\">"
        "<rule id=\"0\" initial=\"0\" finals=\"0\"/>"
        "<transition from=\"0\" to=\"9\" symbols=\"61\" belongs=\"0\"/>"
        "</mfsa-network>",
        "endpoints");
  // Missing rule element.
  Fails("<mfsa-network states=\"1\" rules=\"1\"></mfsa-network>",
        "missing <rule>");
  // belongs referencing an unknown rule.
  Fails("<mfsa-network states=\"2\" rules=\"1\">"
        "<rule id=\"0\" initial=\"0\" finals=\"1\"/>"
        "<transition from=\"0\" to=\"1\" symbols=\"61\" belongs=\"3\"/>"
        "</mfsa-network>",
        "out of range");
  // Bad symbols field.
  Fails("<mfsa-network states=\"2\" rules=\"1\">"
        "<rule id=\"0\" initial=\"0\" finals=\"1\"/>"
        "<transition from=\"0\" to=\"1\" symbols=\"zz\" belongs=\"0\"/>"
        "</mfsa-network>",
        "symbols");
  // Duplicate rule ids.
  Fails("<mfsa-network states=\"1\" rules=\"1\">"
        "<rule id=\"0\" initial=\"0\" finals=\"\"/>"
        "<rule id=\"0\" initial=\"0\" finals=\"\"/>"
        "</mfsa-network>",
        "duplicate rule");
  // Unterminated element.
  Fails("<mfsa-network states=\"1\" rules=\"0\"", "unterminated");
}

TEST(Anml, ReaderEnforcesResourceLimits) {
  auto FailsWith = [](const std::string &Doc, const AnmlLimits &Limits,
                      const std::string &Needle) {
    Result<Mfsa> R = readAnml(Doc, Limits);
    ASSERT_FALSE(R.ok()) << Doc;
    EXPECT_NE(R.diag().Message.find(Needle), std::string::npos)
        << "got: " << R.diag().Message;
    EXPECT_NE(R.diag().Offset, SIZE_MAX) << "limit Diag must be positioned";
  };

  // Whole-document size cap.
  AnmlLimits Tiny;
  Tiny.MaxDocumentBytes = 16;
  FailsWith(writeAnml(mergePatterns({"abc"}), "big"), Tiny, "size cap");

  // Declared-size caps trip before any proportional allocation: a 100-byte
  // document declaring four billion states must fail up front, not OOM.
  FailsWith("<mfsa-network states=\"4000000000\" rules=\"1\"/>", AnmlLimits(),
            "declared states exceed cap");
  FailsWith("<mfsa-network states=\"1\" rules=\"4000000000\"/>", AnmlLimits(),
            "declared rules exceed cap");

  // Belonging-set cardinality cap.
  AnmlLimits TwoItems;
  TwoItems.MaxListItems = 2;
  FailsWith("<mfsa-network states=\"2\" rules=\"3\">"
            "<rule id=\"0\" initial=\"0\" finals=\"1\"/>"
            "<rule id=\"1\" initial=\"0\" finals=\"1\"/>"
            "<rule id=\"2\" initial=\"0\" finals=\"1\"/>"
            "<transition from=\"0\" to=\"1\" symbols=\"61\" belongs=\"0 1 2\"/>"
            "</mfsa-network>",
            TwoItems, "cardinality cap");

  // Transition-count cap.
  AnmlLimits OneTransition;
  OneTransition.MaxTransitions = 1;
  FailsWith("<mfsa-network states=\"2\" rules=\"1\">"
            "<rule id=\"0\" initial=\"0\" finals=\"1\"/>"
            "<transition from=\"0\" to=\"1\" symbols=\"61\" belongs=\"0\"/>"
            "<transition from=\"1\" to=\"0\" symbols=\"62\" belongs=\"0\"/>"
            "</mfsa-network>",
            OneTransition, "transition count exceeds cap");

  // Nesting-depth cap on unclosed elements.
  AnmlLimits Shallow;
  Shallow.MaxElementDepth = 2;
  FailsWith("<mfsa-network states=\"1\" rules=\"2\">"
            "<rule id=\"0\" initial=\"0\" finals=\"0\">"
            "<rule id=\"1\" initial=\"0\" finals=\"0\">"
            "</mfsa-network>",
            Shallow, "depth cap");

  // At-the-limit documents still parse.
  Mfsa Z = mergePatterns({"ab", "cd"});
  std::string Doc = writeAnml(Z, "limit");
  AnmlLimits Exact;
  Exact.MaxDocumentBytes = Doc.size();
  Exact.MaxStates = Z.numStates();
  Exact.MaxRules = Z.numRules();
  Exact.MaxTransitions = Z.numTransitions();
  Result<Mfsa> Back = readAnml(Doc, Exact);
  ASSERT_TRUE(Back.ok()) << (Back.ok() ? "" : Back.diag().render());
  expectEqualMfsa(Z, *Back);
}

TEST(Anml, ReaderSurvivesEveryTruncation) {
  // Every prefix of a valid document must yield a clean Diag or a verified
  // automaton — no crashes, no partially-initialized accepts.
  std::string Doc = writeAnml(mergePatterns({"a[bc]d", "x|y"}), "trunc");
  for (size_t Length = 0; Length < Doc.size(); ++Length) {
    Result<Mfsa> R = readAnml(Doc.substr(0, Length));
    if (R.ok())
      EXPECT_EQ(R->verify(), "") << "prefix length " << Length;
  }
}

TEST(Anml, MinimalHandWrittenDocumentParses) {
  // A hand-authored document exercising defaults (no anchors, global-id).
  const char *Doc = R"(<?xml version="1.0"?>
<mfsa-network name="hand" states="3" rules="2">
  <rule id="0" initial="0" finals="2"/>
  <rule id="1" initial="1" finals="2" anchored-start="1"/>
  <transition from="0" to="2" symbols="61-63 7a" belongs="0 1"/>
  <transition from="1" to="2" symbols="30" belongs="1"/>
</mfsa-network>)";
  Result<Mfsa> Z = readAnml(Doc);
  ASSERT_TRUE(Z.ok()) << (Z.ok() ? "" : Z.diag().render());
  EXPECT_EQ(Z->numStates(), 3u);
  EXPECT_EQ(Z->numRules(), 2u);
  EXPECT_EQ(Z->numTransitions(), 2u);
  EXPECT_TRUE(Z->rule(1).AnchoredStart);
  EXPECT_EQ(Z->transitions()[0].Label,
            SymbolSet::range('a', 'c') | SymbolSet::singleton('z'));
}

TEST(Anml, FileSaveAndLoad) {
  Mfsa Z = mergePatterns({"filetest"});
  std::string Doc = writeAnml(Z, "file");
  std::string Path = ::testing::TempDir() + "/mfsa_anml_test.xml";
  ASSERT_TRUE(saveFile(Path, Doc));
  Result<std::string> Loaded = loadFile(Path);
  ASSERT_TRUE(Loaded.ok());
  EXPECT_EQ(*Loaded, Doc);
  std::remove(Path.c_str());

  EXPECT_FALSE(loadFile("/nonexistent/dir/file.xml").ok());
  EXPECT_FALSE(saveFile("/nonexistent/dir/file.xml", Doc));
}
