//===- WorkloadTest.cpp - tests for datasets, streams, INDEL, sampler --------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "workload/Datasets.h"
#include "workload/Indel.h"
#include "workload/Sampler.h"

#include "fsa/Reference.h"
#include "regex/Parser.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace mfsa;
using namespace mfsa::test;

//===----------------------------------------------------------------------===//
// INDEL similarity
//===----------------------------------------------------------------------===//

TEST(Indel, PaperWorkedExample) {
  // lewenstein vs levenshtein: INDEL = 3, similarity = 1 - 3/21 ≈ 0.8572.
  EXPECT_EQ(indelDistanceDp("lewenstein", "levenshtein"), 3u);
  double Similarity = normalizedIndelSimilarity("lewenstein", "levenshtein");
  EXPECT_NEAR(Similarity, 0.8572, 5e-4);
}

TEST(Indel, EdgeCases) {
  EXPECT_EQ(indelDistanceDp("", ""), 0u);
  EXPECT_EQ(indelDistanceDp("abc", ""), 3u);
  EXPECT_EQ(indelDistanceDp("", "xy"), 2u);
  EXPECT_EQ(indelDistanceDp("same", "same"), 0u);
  EXPECT_EQ(indelDistanceDp("abc", "xyz"), 6u);
  EXPECT_DOUBLE_EQ(normalizedIndelSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(normalizedIndelSimilarity("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(normalizedIndelSimilarity("abc", "xyz"), 0.0);
}

TEST(Indel, BitParallelMatchesDp) {
  Rng Random(202);
  for (int Trial = 0; Trial < 60; ++Trial) {
    // Cross the 64-bit word boundary regularly.
    size_t LenA = Random.nextInRange(0, 150);
    size_t LenB = Random.nextInRange(0, 150);
    std::string A = randomInput(Random, LenA);
    std::string B = randomInput(Random, LenB);
    unsigned Lcs = lcsLengthBitParallel(A, B);
    unsigned Dp = indelDistanceDp(A, B);
    EXPECT_EQ(static_cast<unsigned>(A.size() + B.size()) - 2 * Lcs, Dp)
        << A << " vs " << B;
  }
}

TEST(Indel, AveragePairSimilarityExhaustiveVsSampled) {
  std::vector<std::string> Strings = {"abcd", "abce", "abxx", "zzzz"};
  double Exhaustive = averagePairSimilarity(Strings);
  EXPECT_GT(Exhaustive, 0.0);
  EXPECT_LT(Exhaustive, 1.0);
  // Sampling with a generous budget approximates the exhaustive value.
  double Sampled = averagePairSimilarity(Strings, 3000, 9);
  EXPECT_NEAR(Sampled, Exhaustive, 0.08);
}

//===----------------------------------------------------------------------===//
// Sampler
//===----------------------------------------------------------------------===//

TEST(Sampler, SamplesAlwaysMatch) {
  const char *Patterns[] = {"ab[cd]e*", "(x|y){2,5}z", "a.*b",
                            "[0-9]{3}(ms|s)", "w+(abc)?"};
  Rng Random(55);
  for (const char *Pattern : Patterns) {
    Result<Regex> Re = parseRegex(Pattern);
    ASSERT_TRUE(Re.ok());
    for (int Trial = 0; Trial < 20; ++Trial) {
      std::string Sample = sampleMatch(*Re, Random);
      if (Sample.empty())
        continue; // ε sample of an optional pattern: nothing to check
      std::set<size_t> Ends = astMatchEnds(*Re, Sample);
      EXPECT_TRUE(Ends.count(Sample.size()))
          << Pattern << " sample '" << Sample << "' does not match";
    }
  }
}

TEST(Sampler, RespectsRepeatCap) {
  Result<Regex> Re = parseRegex("a*");
  ASSERT_TRUE(Re.ok());
  Rng Random(1);
  for (int Trial = 0; Trial < 50; ++Trial) {
    std::string Sample = sampleMatch(*Re, Random, 3);
    EXPECT_LE(Sample.size(), 3u);
  }
}

//===----------------------------------------------------------------------===//
// Dataset generators
//===----------------------------------------------------------------------===//

TEST(Datasets, RegistryHasSixCalibratedEntries) {
  const std::vector<DatasetSpec> &Specs = standardDatasets();
  ASSERT_EQ(Specs.size(), 6u);
  const char *Expected[] = {"BRO", "DS9", "PEN", "PRO", "RG1", "TCP"};
  for (size_t I = 0; I < 6; ++I)
    EXPECT_EQ(Specs[I].Abbrev, Expected[I]);
  EXPECT_EQ(findDataset("BRO")->NumRes, 217u);
  EXPECT_EQ(findDataset("PRO")->NumRes, 300u);
  EXPECT_EQ(findDataset("nope"), nullptr);
}

TEST(Datasets, GenerationIsDeterministic) {
  const DatasetSpec &Spec = *findDataset("BRO");
  std::vector<std::string> A = generateRuleset(Spec);
  std::vector<std::string> B = generateRuleset(Spec);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.size(), Spec.NumRes);
}

TEST(Datasets, AllRulesParseAndBuild) {
  for (const DatasetSpec &Spec : standardDatasets()) {
    std::vector<std::string> Rules = generateRuleset(Spec);
    ASSERT_EQ(Rules.size(), Spec.NumRes) << Spec.Abbrev;
    for (const std::string &Rule : Rules) {
      Result<Regex> Re = parseRegex(Rule);
      ASSERT_TRUE(Re.ok()) << Spec.Abbrev << ": " << Rule << ": "
                           << (Re.ok() ? "" : Re.diag().render());
      Result<Nfa> A = buildNfa(*Re);
      ASSERT_TRUE(A.ok()) << Spec.Abbrev << ": " << Rule;
    }
  }
}

TEST(Datasets, FamiliesGiveNeighbourSimilarity) {
  // Family structure: consecutive rules are markedly more similar than
  // random pairs (the Fig. 1 premise).
  const DatasetSpec &Spec = *findDataset("TCP");
  std::vector<std::string> Rules = generateRuleset(Spec);
  double Neighbour = 0, Distant = 0;
  unsigned Count = 100;
  for (unsigned I = 0; I < Count; ++I) {
    Neighbour += normalizedIndelSimilarity(Rules[I], Rules[I + 1]);
    Distant += normalizedIndelSimilarity(Rules[I], Rules[I + 150]);
  }
  EXPECT_GT(Neighbour / Count, Distant / Count + 0.1);
}

TEST(Datasets, StreamsAreDeterministicAndSized) {
  const DatasetSpec &Spec = *findDataset("PEN");
  std::vector<std::string> Rules = generateRuleset(Spec);
  std::string S1 = generateStream(Spec, Rules, 4096);
  std::string S2 = generateStream(Spec, Rules, 4096);
  EXPECT_EQ(S1, S2);
  EXPECT_EQ(S1.size(), 4096u);
  // Different salt gives a different stream.
  std::string S3 = generateStream(Spec, Rules, 4096, 1);
  EXPECT_NE(S1, S3);
}

TEST(Datasets, StreamsContainPlantedMatches) {
  const DatasetSpec &Spec = *findDataset("BRO");
  std::vector<std::string> Rules = generateRuleset(Spec);
  std::string Stream = generateStream(Spec, Rules, 16384);
  // At least one of the first rules matches somewhere in the stream.
  unsigned Matched = 0;
  for (size_t I = 0; I < 25; ++I) {
    Result<Regex> Re = parseRegex(Rules[I]);
    ASSERT_TRUE(Re.ok());
    Result<Nfa> A = buildNfa(*Re);
    ASSERT_TRUE(A.ok());
    if (!simulateNfa(*A, Stream).empty())
      ++Matched;
  }
  EXPECT_GT(Matched, 0u);
}
