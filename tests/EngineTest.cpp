//===- EngineTest.cpp - unit + property tests for iMFAnt ---------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "engine/Imfant.h"
#include "engine/Parallel.h"

#include "fsa/Passes.h"
#include "fsa/Reference.h"
#include "mfsa/Merge.h"
#include "regex/Parser.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <map>

using namespace mfsa;
using namespace mfsa::test;

namespace {

/// Compiles + merges patterns and returns the engine-ready MFSA.
Mfsa mergePatterns(const std::vector<std::string> &Patterns) {
  std::vector<Nfa> Fsas;
  std::vector<uint32_t> Ids;
  for (size_t I = 0; I < Patterns.size(); ++I) {
    Fsas.push_back(compileOptimized(Patterns[I]));
    Ids.push_back(static_cast<uint32_t>(I));
  }
  return mergeFsas(Fsas, Ids);
}

/// Runs the engine and returns per-global-rule match-end sets.
std::map<uint32_t, std::set<size_t>> engineEnds(const Mfsa &Z,
                                                const std::string &Input) {
  ImfantEngine Engine(Z);
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  Engine.run(Input, Recorder);
  std::map<uint32_t, std::set<size_t>> Ends;
  for (const auto &[Rule, End] : Recorder.matches())
    Ends[Rule].insert(static_cast<size_t>(End));
  return Ends;
}

/// Oracle ends per rule, from the original patterns.
std::map<uint32_t, std::set<size_t>>
oracleEnds(const std::vector<std::string> &Patterns,
           const std::string &Input) {
  std::map<uint32_t, std::set<size_t>> Ends;
  for (size_t I = 0; I < Patterns.size(); ++I) {
    Result<Regex> Re = parseRegex(Patterns[I]);
    EXPECT_TRUE(Re.ok()) << Patterns[I];
    std::set<size_t> E = astMatchEnds(*Re, Input);
    if (!E.empty())
      Ends[static_cast<uint32_t>(I)] = E;
  }
  return Ends;
}

} // namespace

//===----------------------------------------------------------------------===//
// Single-rule engine == iNFAnt baseline
//===----------------------------------------------------------------------===//

TEST(Imfant, SingleRuleBasicMatch) {
  Mfsa Z = mergePatterns({"abc"});
  EXPECT_EQ(engineEnds(Z, "zabcabc"),
            (std::map<uint32_t, std::set<size_t>>{{0, {4, 7}}}));
  EXPECT_TRUE(engineEnds(Z, "zzzz").empty());
  EXPECT_TRUE(engineEnds(Z, "").empty());
}

TEST(Imfant, OverlappingSelfMatches) {
  Mfsa Z = mergePatterns({"aa"});
  // "aaaa": matches end at 2, 3, 4 (dedup of simultaneous paths).
  EXPECT_EQ(engineEnds(Z, "aaaa"),
            (std::map<uint32_t, std::set<size_t>>{{0, {2, 3, 4}}}));
  ImfantEngine Engine(Z);
  MatchRecorder Recorder;
  Engine.run("aaaa", Recorder);
  EXPECT_EQ(Recorder.total(), 3u); // not double-counted
}

TEST(Imfant, ClassesAndRepeats) {
  Mfsa Z = mergePatterns({"[0-9]{2,3}x"});
  EXPECT_EQ(engineEnds(Z, "a12x34xb"),
            (std::map<uint32_t, std::set<size_t>>{{0, {4, 7}}}));
  EXPECT_EQ(engineEnds(Z, "123x"),
            (std::map<uint32_t, std::set<size_t>>{{0, {4}}}));
  EXPECT_TRUE(engineEnds(Z, "1x").empty());
}

TEST(Imfant, AnchoredRules) {
  Mfsa Z = mergePatterns({"^ab", "ab$", "ab"});
  auto Ends = engineEnds(Z, "abxab");
  EXPECT_EQ(Ends[0], (std::set<size_t>{2}));    // ^ab only at offset 0
  EXPECT_EQ(Ends[1], (std::set<size_t>{5}));    // ab$ only at stream end
  EXPECT_EQ(Ends[2], (std::set<size_t>{2, 5})); // unanchored both
}

//===----------------------------------------------------------------------===//
// Paper worked examples
//===----------------------------------------------------------------------===//

TEST(Imfant, Figure3ActivationTrace) {
  // a1 = bcdegh, a2 = def (Fig. 3).
  Mfsa Z = mergePatterns({"bcdegh", "def"});
  // s1 = degh: a2 activates on d,e then dies on g; no matches at all.
  EXPECT_TRUE(engineEnds(Z, "degh").empty());
  // s2 = bcdef: a2 matches def (end 5); a1 dies at f.
  EXPECT_EQ(engineEnds(Z, "bcdef"),
            (std::map<uint32_t, std::set<size_t>>{{1, {5}}}));
  // Full a1 match for completeness.
  EXPECT_EQ(engineEnds(Z, "bcdegh"),
            (std::map<uint32_t, std::set<size_t>>{{0, {6}}}));
}

TEST(Imfant, Figure6MatchingProcedure) {
  // a1 = (ad|cb)ab, a2 = a(b|c); input acbab yields ac and ab for a2 and
  // cbab for a1 — three matches (§V).
  Mfsa Z = mergePatterns({"(ad|cb)ab", "a(b|c)"});
  auto Ends = engineEnds(Z, "acbab");
  EXPECT_EQ(Ends[0], (std::set<size_t>{5}));    // cbab
  EXPECT_EQ(Ends[1], (std::set<size_t>{2, 5})); // ac, ab
  ImfantEngine Engine(Z);
  MatchRecorder Recorder;
  Engine.run("acbab", Recorder);
  EXPECT_EQ(Recorder.total(), 3u);
}

TEST(Imfant, NoFalsePositivesAcrossMergedRules) {
  // The Fig. 2 hazard: merged z1,2 must NOT accept kjaglm (a path mixing
  // a2's prefix with a1's suffix) for either rule.
  std::vector<std::string> Patterns = {"a[gj](lm|cd)", "kja[gj]cd"};
  Mfsa Z = mergePatterns(Patterns);
  auto Ends = engineEnds(Z, "kjaglm");
  // Oracle: a1 = a[gj](lm|cd) matches "aglm" (ends at 6) inside the input!
  // So rule 0 legitimately matches; rule 1 must not.
  auto Expected = oracleEnds(Patterns, "kjaglm");
  EXPECT_EQ(Ends, Expected);
  EXPECT_EQ(Ends.count(1), 0u);
}

//===----------------------------------------------------------------------===//
// Equivalence with per-rule oracles (the core correctness property)
//===----------------------------------------------------------------------===//

TEST(Imfant, MergedEqualsPerRuleOracleOnPlantedInput) {
  std::vector<std::string> Patterns = {"user=admin", "user=root",
                                       "user=[a-z]+x", "pass(wd)?=",
                                       "user=admin"}; // duplicate rule
  Mfsa Z = mergePatterns(Patterns);
  std::string Input = "zzuser=adminzzpass=zzuser=aaaxpasswd=user=rootz";
  EXPECT_EQ(engineEnds(Z, Input), oracleEnds(Patterns, Input));
}

class ImfantAgainstOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ImfantAgainstOracle, RandomRulesetsRandomInputs) {
  Rng Random(GetParam());
  std::vector<std::string> Patterns;
  unsigned Count = 2 + Random.nextBelow(5);
  for (unsigned I = 0; I < Count; ++I)
    Patterns.push_back(randomPattern(Random));
  Mfsa Z = mergePatterns(Patterns);
  ASSERT_EQ(Z.verify(), "");
  ImfantEngine Engine(Z);
  for (int Trial = 0; Trial < 8; ++Trial) {
    std::string Input = randomInput(Random, 20);
    EXPECT_EQ(engineEnds(Z, Input), oracleEnds(Patterns, Input))
        << "input " << Input;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImfantAgainstOracle,
                         ::testing::Values(101, 103, 107, 109, 113, 127, 131,
                                           137, 139, 149, 151, 157));

TEST(Imfant, MergingFactorInvariance) {
  // The same ruleset merged at M = 1, 2, 3, all must report identical
  // matches.
  std::vector<std::string> Patterns = {"ab+c", "abc", "a[bc]{2}",
                                       "c(a|b)c",  "bca"};
  std::vector<Nfa> Fsas;
  for (const std::string &P : Patterns)
    Fsas.push_back(compileOptimized(P));

  Rng Random(777);
  for (int Trial = 0; Trial < 5; ++Trial) {
    std::string Input = randomInput(Random, 40);
    std::map<uint32_t, std::set<size_t>> Reference =
        oracleEnds(Patterns, Input);
    for (uint32_t M : {1u, 2u, 3u, 0u}) {
      std::vector<Mfsa> Groups = mergeInGroups(Fsas, M);
      std::map<uint32_t, std::set<size_t>> Combined;
      for (const Mfsa &Z : Groups)
        for (auto &[Rule, Ends] : engineEnds(Z, Input))
          Combined[Rule].insert(Ends.begin(), Ends.end());
      EXPECT_EQ(Combined, Reference) << "M=" << M << " input " << Input;
    }
  }
}

//===----------------------------------------------------------------------===//
// Run statistics (Table II)
//===----------------------------------------------------------------------===//

TEST(Imfant, RunStatsActiveRules) {
  Mfsa Z = mergePatterns({"aaaa", "aaab"});
  ImfantEngine Engine(Z);
  MatchRecorder Recorder;
  RunStats Stats;
  Engine.run("aaaaa", Recorder, &Stats);
  EXPECT_EQ(Stats.Steps, 5u);
  // Shared prefix keeps both rules active most steps.
  EXPECT_GE(Stats.MaxActiveRules, 2u);
  EXPECT_GT(Stats.AvgActiveRules, 0.0);
  EXPECT_GT(Stats.TransitionsEvaluated, 0u);
}

TEST(Imfant, StatsDoNotChangeMatches) {
  Mfsa Z = mergePatterns({"ab", "b+"});
  MatchRecorder WithStats(MatchRecorder::Mode::Collect);
  MatchRecorder WithoutStats(MatchRecorder::Mode::Collect);
  RunStats Stats;
  ImfantEngine Engine(Z);
  Engine.run("abbb", WithStats, &Stats);
  Engine.run("abbb", WithoutStats);
  EXPECT_EQ(WithStats.matches(), WithoutStats.matches());
}

//===----------------------------------------------------------------------===//
// MatchRecorder modes
//===----------------------------------------------------------------------===//

TEST(MatchRecorder, CountOnlySkipsPairs) {
  MatchRecorder Recorder(MatchRecorder::Mode::CountOnly);
  Recorder.onMatch(3, 10);
  Recorder.onMatch(3, 11);
  Recorder.onMatch(5, 12);
  EXPECT_EQ(Recorder.total(), 3u);
  EXPECT_TRUE(Recorder.matches().empty());
  ASSERT_GE(Recorder.perRule().size(), 6u);
  EXPECT_EQ(Recorder.perRule()[3], 2u);
  EXPECT_EQ(Recorder.perRule()[5], 1u);
}

TEST(MatchRecorder, CollectHonoursCap) {
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  Recorder.Cap = 2;
  Recorder.onMatch(0, 1);
  Recorder.onMatch(0, 2);
  Recorder.onMatch(0, 3);
  EXPECT_EQ(Recorder.total(), 3u);
  EXPECT_EQ(Recorder.matches().size(), 2u);
}

//===----------------------------------------------------------------------===//
// Parallel executor
//===----------------------------------------------------------------------===//

TEST(Parallel, MatchesEqualSequential) {
  std::vector<std::string> Patterns = {"abc", "bcd", "cde", "dea", "eab",
                                       "ab",  "bc",  "cd"};
  std::vector<Nfa> Fsas;
  for (const std::string &P : Patterns)
    Fsas.push_back(compileOptimized(P));
  std::vector<Mfsa> Groups = mergeInGroups(Fsas, 2);
  std::vector<ImfantEngine> Engines;
  for (const Mfsa &Z : Groups)
    Engines.emplace_back(Z);

  Rng Random(4242);
  std::string Input = randomInput(Random, 500);

  // Sequential reference.
  uint64_t SequentialTotal = 0;
  for (const ImfantEngine &Engine : Engines) {
    MatchRecorder Recorder;
    Engine.run(Input, Recorder);
    SequentialTotal += Recorder.total();
  }

  for (unsigned Threads : {1u, 2u, 4u, 9u}) {
    std::vector<MatchRecorder> Recorders(Engines.size());
    ParallelRunResult Result =
        runParallel(Engines, Input, Threads, &Recorders);
    EXPECT_EQ(Result.TotalMatches, SequentialTotal) << Threads << " threads";
    EXPECT_GT(Result.WallSeconds, 0.0);
  }
}

TEST(Parallel, MoreEnginesThanThreadsAllRun) {
  std::vector<Nfa> Fsas;
  for (int I = 0; I < 17; ++I)
    Fsas.push_back(compileOptimized("x"));
  std::vector<Mfsa> Groups = mergeInGroups(Fsas, 1);
  std::vector<ImfantEngine> Engines;
  for (const Mfsa &Z : Groups)
    Engines.emplace_back(Z);
  std::vector<MatchRecorder> Recorders(Engines.size());
  ParallelRunResult Result = runParallel(Engines, "xx", 3, &Recorders);
  EXPECT_EQ(Result.TotalMatches, 17u * 2u);
  for (const MatchRecorder &R : Recorders)
    EXPECT_EQ(R.total(), 2u);
}

TEST(Parallel, UnboundedRunReportsFullCompletion) {
  std::vector<Nfa> Fsas = {compileOptimized("ab"), compileOptimized("cd"),
                           compileOptimized("ef")};
  std::vector<Mfsa> Groups = mergeInGroups(Fsas, 1);
  std::vector<ImfantEngine> Engines;
  for (const Mfsa &Z : Groups)
    Engines.emplace_back(Z);
  ParallelRunResult Result = runParallel(Engines, "abcdef", 2);
  EXPECT_FALSE(Result.Degraded);
  EXPECT_EQ(Result.NumCompleted, Engines.size());
  EXPECT_EQ(Result.Completed.count(), Engines.size());
}

TEST(Parallel, GenerousDeadlineChunkedRunMatchesUnbounded) {
  // A non-expiring deadline routes execution through the chunked Scanner
  // path; results must be byte-identical to the unbounded fast path even
  // when chunk boundaries fall inside matches.
  std::vector<std::string> Patterns = {"abc", "bcd", "ab", "cd"};
  std::vector<Nfa> Fsas;
  for (const std::string &P : Patterns)
    Fsas.push_back(compileOptimized(P));
  std::vector<Mfsa> Groups = mergeInGroups(Fsas, 2);
  std::vector<ImfantEngine> Engines;
  for (const Mfsa &Z : Groups)
    Engines.emplace_back(Z);

  Rng Random(5150);
  std::string Input = randomInput(Random, 3000);

  uint64_t SequentialTotal = 0;
  for (const ImfantEngine &Engine : Engines) {
    MatchRecorder Recorder;
    Engine.run(Input, Recorder);
    SequentialTotal += Recorder.total();
  }

  ParallelRunOptions Options;
  Options.DeadlineMs = 1e9;
  Options.ChunkBytes = 7; // force many chunk boundaries
  std::vector<MatchRecorder> Recorders(Engines.size());
  ParallelRunResult Result =
      runParallel(Engines, Input, 3, &Recorders, Options);
  EXPECT_FALSE(Result.Degraded);
  EXPECT_EQ(Result.NumCompleted, Engines.size());
  EXPECT_EQ(Result.TotalMatches, SequentialTotal);
}

//===----------------------------------------------------------------------===//
// Engine preprocessing
//===----------------------------------------------------------------------===//

TEST(Imfant, FootprintGrowsWithAutomaton) {
  Mfsa Small = mergePatterns({"ab"});
  Mfsa Large = mergePatterns({"abcdefghij", "jihgfedcba", "[a-z]{4}x"});
  EXPECT_GT(ImfantEngine(Large).footprintBytes(),
            ImfantEngine(Small).footprintBytes());
}

//===----------------------------------------------------------------------===//
// Activation tracing agrees with the engine
//===----------------------------------------------------------------------===//

#include "engine/Trace.h"

TEST(Trace, MatchesAgreeWithEngine) {
  Rng Random(1234);
  for (int Round = 0; Round < 6; ++Round) {
    std::vector<std::string> Patterns;
    unsigned Count = 2 + Random.nextBelow(3);
    for (unsigned I = 0; I < Count; ++I)
      Patterns.push_back(randomPattern(Random));
    Mfsa Z = mergePatterns(Patterns);
    ImfantEngine Engine(Z);
    for (int Trial = 0; Trial < 4; ++Trial) {
      std::string Input = randomInput(Random, 18);
      // Engine view.
      MatchRecorder Recorder(MatchRecorder::Mode::Collect);
      Engine.run(Input, Recorder);
      std::multiset<std::pair<uint32_t, uint64_t>> FromEngine(
          Recorder.matches().begin(), Recorder.matches().end());
      // Trace view.
      std::multiset<std::pair<uint32_t, uint64_t>> FromTrace;
      for (const TraceStep &Step : traceActivation(Z, Input))
        for (const auto &[Rule, GlobalId] : Step.Matches)
          FromTrace.emplace(GlobalId, Step.Offset);
      EXPECT_EQ(FromEngine, FromTrace) << Input;
    }
  }
}

TEST(Trace, FormatShowsActivationSets) {
  Mfsa Z = mergePatterns({"ab", "ac"});
  std::string Text = formatTrace(Z, "ab");
  EXPECT_NE(Text.find("J={"), std::string::npos);
  EXPECT_NE(Text.find("match: rule 0"), std::string::npos);
}

TEST(Trace, EmptyInputEmptyTrace) {
  Mfsa Z = mergePatterns({"ab"});
  EXPECT_TRUE(traceActivation(Z, "").empty());
}
