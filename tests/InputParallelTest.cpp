//===- InputParallelTest.cpp - input-parallel stitching property tests -------===//
//
// Part of the mfsa project. MIT License.
//
// Property: the match set of InputParallelRun is invariant under the
// chunking. Every backend (dense iMFAnt, union DFA, stride-2 DFA) x every
// thread count x every adversarial cut set (TestHelpers.h: cuts at match
// ends, mid-match, 1-byte chunks, empty chunks, random) x every available
// SIMD dispatch level must reproduce the AST oracle's per-rule match-end
// sets exactly — the "byte-identical to a sequential scan" contract of
// engine/InputParallel.h. A ThreadPool case runs the same property with
// phase 1 actually concurrent, which the tsan CI leg exercises.
//
//===----------------------------------------------------------------------===//

#include "analysis/CostModel.h"
#include "engine/InputParallel.h"
#include "engine/MultiStride.h"
#include "fsa/Determinize.h"
#include "mfsa/Merge.h"
#include "support/SimdDispatch.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

using namespace mfsa;
using namespace mfsa::test;

namespace {

using RuleEnds = std::map<uint32_t, std::set<size_t>>;

/// Restores the env-resolved SIMD level on scope exit.
struct SimdLevelGuard {
  ~SimdLevelGuard() { simd::resetToEnv(); }
};

std::string formatCuts(const std::vector<uint64_t> &Cuts) {
  std::string Out = "cuts={";
  for (uint64_t C : Cuts)
    Out += std::to_string(C) + ",";
  return Out + "}";
}

/// Compiles \p Patterns once and checks every backend x chunking x SIMD
/// level against the oracle on every input. \p Seed labels failures and
/// seeds the adversarial cut generator.
void checkInputParallel(uint64_t Seed,
                        const std::vector<std::string> &Patterns,
                        const std::vector<std::string> &Inputs) {
  std::vector<Nfa> Fsas;
  std::vector<uint32_t> Ids;
  for (size_t I = 0; I < Patterns.size(); ++I) {
    Fsas.push_back(compileOptimized(Patterns[I]));
    Ids.push_back(static_cast<uint32_t>(I));
  }
  Mfsa Merged = mergeFsas(Fsas, Ids);
  ASSERT_EQ(Merged.verify(), "") << formatPatterns(Patterns);

  ImfantEngine Imfant(Merged);
  const WidthBound Width = boundActivationWidth(Merged);

  Result<Dfa> UnionDfa = determinize(Fsas, Ids);
  std::optional<StridedDfa> Stride2;
  if (UnionDfa.ok()) {
    Result<StridedDfa> S2 = makeStride2(*UnionDfa);
    if (S2.ok())
      Stride2.emplace(std::move(*S2));
  }

  // One executor per (backend, options) pair: construction precomputes the
  // speculative frontier, run() is const and reusable across inputs.
  auto MakeOpts = [&](unsigned Threads, std::vector<uint64_t> Cuts) {
    InputParallelOptions Opts;
    Opts.Threads = Threads;
    Opts.MinChunkBytes = 1; // Test inputs are tiny: always really split.
    Opts.CutOverride = std::move(Cuts);
    Opts.Width = &Width;
    return Opts;
  };

  Rng Random(Seed ^ 0x9e3779b97f4a7c15ull);
  SimdLevelGuard Guard;
  for (const std::string &Input : Inputs) {
    const RuleEnds Expected = oracleRuleEnds(Patterns, Input);
    std::vector<std::vector<uint64_t>> CutSets =
        adversarialCuts(Random, Input, Expected);
    // The default even split at each requested thread count rides along as
    // additional "cut sets" (empty = use Threads).
    std::vector<std::pair<unsigned, std::vector<uint64_t>>> Chunkings;
    for (unsigned T : {2u, 3u, 8u})
      Chunkings.emplace_back(T, std::vector<uint64_t>{});
    for (std::vector<uint64_t> &Cuts : CutSets)
      Chunkings.emplace_back(0u, std::move(Cuts));

    for (simd::Level Lvl : simd::availableLevels()) {
      ASSERT_TRUE(simd::setLevel(Lvl));
      for (const auto &[Threads, Cuts] : Chunkings) {
        const std::string Tag =
            "seed=" + std::to_string(Seed) + " ruleset=" +
            formatPatterns(Patterns) + " input=\"" + Input + "\" simd=" +
            simd::levelName(Lvl) + " T=" + std::to_string(Threads) + " " +
            formatCuts(Cuts);

        {
          InputParallelRun Par(Imfant, MakeOpts(Threads, Cuts));
          MatchRecorder Recorder(MatchRecorder::Mode::Collect);
          InputParallelStats Stats;
          Par.run(Input, Recorder, &Stats);
          EXPECT_EQ(recorderEnds(Recorder), Expected)
              << "backend=imfant " << Tag;
          // Speculative scans start inside CostModel-reachable
          // configurations, so the static width bound dominates their
          // observed frontiers too.
          EXPECT_GE(Width.MaxActiveStates, Stats.MaxSpecFrontier)
              << "spec frontier bound " << Tag;
        }
        if (UnionDfa.ok()) {
          InputParallelRun Par(*UnionDfa, MakeOpts(Threads, Cuts));
          MatchRecorder Recorder(MatchRecorder::Mode::Collect);
          Par.run(Input, Recorder);
          EXPECT_EQ(recorderEnds(Recorder), Expected)
              << "backend=dfa " << Tag;
        }
        if (Stride2) {
          InputParallelRun Par(*Stride2, MakeOpts(Threads, Cuts));
          MatchRecorder Recorder(MatchRecorder::Mode::Collect);
          Par.run(Input, Recorder);
          EXPECT_EQ(recorderEnds(Recorder), Expected)
              << "backend=stride2 " << Tag;
        }
      }
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Seeded random rulesets.
//===----------------------------------------------------------------------===//

class InputParallelProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InputParallelProperty, MatchSetInvariantUnderChunking) {
  const uint64_t Seed = GetParam();
  Rng Random(Seed);

  std::vector<std::string> Patterns;
  unsigned Count = 1 + Random.nextBelow(5);
  for (unsigned I = 0; I < Count; ++I)
    Patterns.push_back(randomPattern(Random));

  std::vector<std::string> Inputs;
  Inputs.push_back("");
  for (int Trial = 0; Trial < 2; ++Trial)
    Inputs.push_back(randomInput(Random, 16 + Random.nextBelow(48)));

  checkInputParallel(Seed, Patterns, Inputs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InputParallelProperty,
                         ::testing::Range<uint64_t>(9100, 9112));

//===----------------------------------------------------------------------===//
// Curated boundary shapes.
//===----------------------------------------------------------------------===//

TEST(InputParallel, AnchorsAcrossCuts) {
  // `^` must inject only at stream offset 0 (never at a chunk base) and `$`
  // must fire only at the true stream end (never at a cut, including cuts
  // that leave a trailing empty chunk).
  Rng Random(4301);
  std::vector<std::string> Patterns = {"^ab", "ab$", "ab", "^a[bc]*d$"};
  std::vector<std::string> Inputs = {"abxab", "abcdab", "ab", ""};
  for (int Trial = 0; Trial < 2; ++Trial)
    Inputs.push_back(randomInput(Random, 24));
  checkInputParallel(4301, Patterns, Inputs);
}

TEST(InputParallel, MatchAcrossThreeConsecutiveBoundaries) {
  // One occurrence of "abcd" sliced by three consecutive cuts: the carry
  // must survive two boundary handoffs before the match completes.
  std::vector<std::string> Patterns = {"abcd", "bc"};
  std::string Input = "xxabcdxx";
  Mfsa Merged = [&] {
    std::vector<Nfa> Fsas;
    std::vector<uint32_t> Ids;
    for (size_t I = 0; I < Patterns.size(); ++I) {
      Fsas.push_back(compileOptimized(Patterns[I]));
      Ids.push_back(static_cast<uint32_t>(I));
    }
    return mergeFsas(Fsas, Ids);
  }();
  ImfantEngine Imfant(Merged);
  const RuleEnds Expected = oracleRuleEnds(Patterns, Input);
  InputParallelOptions Opts;
  Opts.MinChunkBytes = 1;
  Opts.CutOverride = {3, 4, 5}; // "xxa|b|c|dxx" — cuts inside the match.
  InputParallelRun Par(Imfant, Opts);
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  Par.run(Input, Recorder);
  EXPECT_EQ(recorderEnds(Recorder), Expected);
}

TEST(InputParallel, SelfOverlappingRules) {
  Rng Random(4302);
  std::vector<std::string> Patterns = {"aa", "(ab)+", "a{2,4}b?"};
  std::vector<std::string> Inputs = {"aaaaab", "abababa"};
  for (int Trial = 0; Trial < 2; ++Trial)
    Inputs.push_back(randomInput(Random, 40));
  checkInputParallel(4302, Patterns, Inputs);
}

TEST(InputParallel, WideRulesetMultiWordActivation) {
  // 70 rules forces two-word activation bitsets, so the speculative
  // possible-rule masks and table masking exercise the multi-word path.
  Rng Random(4303);
  std::vector<std::string> Patterns;
  static const char Alphabet[] = "abcde";
  for (int A = 0; A < 5; ++A)
    for (int B = 0; B < 5; ++B)
      Patterns.push_back({Alphabet[A], Alphabet[B]});
  for (int A = 0; A < 5 && Patterns.size() < 70; ++A)
    for (int B = 0; B < 5 && Patterns.size() < 70; ++B)
      for (int C = 0; C < 5 && Patterns.size() < 70; ++C)
        Patterns.push_back({Alphabet[A], Alphabet[B], Alphabet[C]});
  std::vector<std::string> Inputs = {randomInput(Random, 64)};
  checkInputParallel(4303, Patterns, Inputs);
}

TEST(InputParallel, ThreadPoolPhaseOneIsRaceFree) {
  // Phase 1 actually concurrent (the tsan leg's target): per-chunk results
  // land in disjoint slots, the join is sequential.
  Rng Random(4304);
  std::vector<std::string> Patterns = {"ab(c|d)*", "bc", "a{2,}", "cd$"};
  std::string Input = randomInput(Random, 4096);
  std::vector<Nfa> Fsas;
  std::vector<uint32_t> Ids;
  for (size_t I = 0; I < Patterns.size(); ++I) {
    Fsas.push_back(compileOptimized(Patterns[I]));
    Ids.push_back(static_cast<uint32_t>(I));
  }
  Mfsa Merged = mergeFsas(Fsas, Ids);
  ImfantEngine Imfant(Merged);
  const RuleEnds Expected = oracleRuleEnds(Patterns, Input);

  InputParallelOptions Opts;
  Opts.Threads = 4;
  Opts.MinChunkBytes = 1;
  Opts.UseThreadPool = true;
  {
    InputParallelRun Par(Imfant, Opts);
    MatchRecorder Recorder(MatchRecorder::Mode::Collect);
    InputParallelStats Stats;
    Par.run(Input, Recorder, &Stats);
    EXPECT_EQ(recorderEnds(Recorder), Expected);
    EXPECT_EQ(Stats.Chunks, 4u);
  }
  Result<Dfa> UnionDfa = determinize(Fsas, Ids);
  ASSERT_TRUE(UnionDfa.ok());
  {
    InputParallelRun Par(*UnionDfa, Opts);
    MatchRecorder Recorder(MatchRecorder::Mode::Collect);
    Par.run(Input, Recorder);
    EXPECT_EQ(recorderEnds(Recorder), Expected);
  }
}

TEST(InputParallel, StatsClassifyChunks) {
  // Literal rules without `.*` keep frontiers short-lived: on a long-enough
  // input the union death probe dies inside the window, so every
  // non-leading chunk should resolve as Dead (bounded overlap), not as a
  // full re-scan.
  std::vector<std::string> Patterns = {"abc", "bcd"};
  Rng Random(4305);
  std::string Input = randomInput(Random, 2048);
  std::vector<Nfa> Fsas;
  std::vector<uint32_t> Ids;
  for (size_t I = 0; I < Patterns.size(); ++I) {
    Fsas.push_back(compileOptimized(Patterns[I]));
    Ids.push_back(static_cast<uint32_t>(I));
  }
  Mfsa Merged = mergeFsas(Fsas, Ids);
  ImfantEngine Imfant(Merged);

  InputParallelOptions Opts;
  Opts.Threads = 4;
  Opts.MinChunkBytes = 1;
  InputParallelRun Par(Imfant, Opts);
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  InputParallelStats Stats;
  Par.run(Input, Recorder, &Stats);
  EXPECT_EQ(recorderEnds(Recorder), oracleRuleEnds(Patterns, Input));
  EXPECT_EQ(Stats.Chunks, 4u);
  EXPECT_EQ(Stats.SpecDeadChunks + Stats.SpecTableChunks, 3u)
      << "dead=" << Stats.SpecDeadChunks << " table=" << Stats.SpecTableChunks
      << " rescan=" << Stats.RescanFallbackChunks;
  EXPECT_EQ(Stats.RescanFallbackChunks, 0u);
}
