//===- SimdTest.cpp - vector kernel property tests -----------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Property-tests every compiled KernelTable against the scalar reference on
// randomized word counts — including widths that are not a multiple of the
// 128/256-bit lane size, the empty set, and all-ones — plus the DynamicBitset
// wrappers under every dispatch level and the byte-class search powering the
// literal-prefilter root skip.
//
//===----------------------------------------------------------------------===//

#include "support/DynamicBitset.h"
#include "support/Rng.h"
#include "support/SimdDispatch.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <vector>

using namespace mfsa;

namespace {

/// Every table compiled into this binary, scalar first.
std::vector<const simd::KernelTable *> compiledTables() {
  std::vector<const simd::KernelTable *> Tables{&simd::scalarKernels()};
  if (const simd::KernelTable *T = simd::sse42Kernels())
    Tables.push_back(T);
  if (const simd::KernelTable *T = simd::avx2Kernels())
    Tables.push_back(T);
  return Tables;
}

/// Word counts that straddle every kernel's main-loop/tail boundary: 0 and 1
/// (degenerate), 2/4 (exactly one 128/256-bit step), odd counts that leave a
/// tail at both lane sizes, and a few larger sizes.
const size_t kWidths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17, 31, 64};

enum class Fill { Random, Zero, Ones, Sparse };

std::vector<uint64_t> makeWords(Rng &Random, size_t W, Fill Kind) {
  std::vector<uint64_t> Words(W, 0);
  switch (Kind) {
  case Fill::Zero:
    break;
  case Fill::Ones:
    std::fill(Words.begin(), Words.end(), ~uint64_t(0));
    break;
  case Fill::Random:
    for (uint64_t &Word : Words)
      Word = Random.next();
    break;
  case Fill::Sparse:
    for (uint64_t &Word : Words)
      Word = Random.nextBool(0.2) ? (uint64_t(1) << Random.nextBelow(64)) : 0;
    break;
  }
  return Words;
}

const Fill kFills[] = {Fill::Random, Fill::Zero, Fill::Ones, Fill::Sparse};

} // namespace

TEST(Simd, ScalarAlwaysAvailable) {
  EXPECT_TRUE(simd::levelAvailable(simd::Level::Scalar));
  std::vector<simd::Level> Levels = simd::availableLevels();
  ASSERT_FALSE(Levels.empty());
  EXPECT_EQ(Levels.front(), simd::Level::Scalar);
  EXPECT_TRUE(std::is_sorted(Levels.begin(), Levels.end()));
  // bestLevel is the top of the available list and what auto resolves to.
  EXPECT_EQ(simd::bestLevel(), Levels.back());
}

TEST(Simd, LevelNamesRoundTrip) {
  for (simd::Level L : {simd::Level::Scalar, simd::Level::Sse42,
                        simd::Level::Avx2}) {
    simd::Level Parsed;
    ASSERT_TRUE(simd::parseLevel(simd::levelName(L), Parsed));
    EXPECT_EQ(Parsed, L);
  }
  simd::Level Ignored;
  EXPECT_FALSE(simd::parseLevel("auto", Ignored));
  EXPECT_FALSE(simd::parseLevel("AVX2", Ignored));
  EXPECT_FALSE(simd::parseLevel("", Ignored));
}

TEST(Simd, SetLevelSwitchesOpsTable) {
  for (simd::Level L : simd::availableLevels()) {
    ASSERT_TRUE(simd::setLevel(L));
    EXPECT_EQ(simd::activeLevel(), L);
    EXPECT_STREQ(simd::ops().Name, simd::levelName(L));
  }
  simd::resetToEnv();
  EXPECT_TRUE(simd::levelAvailable(simd::activeLevel()));
}

TEST(Simd, WordKernelsMatchScalar) {
  const simd::KernelTable &Ref = simd::scalarKernels();
  Rng Random(0x51u);
  for (const simd::KernelTable *Table : compiledTables()) {
    SCOPED_TRACE(Table->Name);
    for (size_t W : kWidths)
      for (Fill DstFill : kFills)
        for (Fill SrcFill : kFills) {
          std::vector<uint64_t> Dst = makeWords(Random, W, DstFill);
          std::vector<uint64_t> Src = makeWords(Random, W, SrcFill);

          std::vector<uint64_t> Expect = Dst, Got = Dst;
          Ref.OrWords(Expect.data(), Src.data(), W);
          Table->OrWords(Got.data(), Src.data(), W);
          EXPECT_EQ(Got, Expect) << "OrWords W=" << W;

          Expect = Dst;
          Got = Dst;
          Ref.AndWords(Expect.data(), Src.data(), W);
          Table->AndWords(Got.data(), Src.data(), W);
          EXPECT_EQ(Got, Expect) << "AndWords W=" << W;

          Expect = Dst;
          Got = Dst;
          Ref.AndNotWords(Expect.data(), Src.data(), W);
          Table->AndNotWords(Got.data(), Src.data(), W);
          EXPECT_EQ(Got, Expect) << "AndNotWords W=" << W;

          EXPECT_EQ(Table->AnyWords(Dst.data(), W),
                    Ref.AnyWords(Dst.data(), W))
              << "AnyWords W=" << W;
          EXPECT_EQ(Table->IntersectsWords(Dst.data(), Src.data(), W),
                    Ref.IntersectsWords(Dst.data(), Src.data(), W))
              << "IntersectsWords W=" << W;
          EXPECT_EQ(Table->CountWords(Dst.data(), W),
                    Ref.CountWords(Dst.data(), W))
              << "CountWords W=" << W;
        }
  }
}

TEST(Simd, FusedKernelsMatchScalar) {
  const simd::KernelTable &Ref = simd::scalarKernels();
  Rng Random(0x52u);
  for (const simd::KernelTable *Table : compiledTables()) {
    SCOPED_TRACE(Table->Name);
    for (size_t W : kWidths)
      for (int Round = 0; Round < 8; ++Round) {
        std::vector<uint64_t> Src =
            makeWords(Random, W, kFills[Random.nextBelow(4)]);
        std::vector<uint64_t> Bel =
            makeWords(Random, W, kFills[Random.nextBelow(4)]);
        std::vector<uint64_t> Mask =
            makeWords(Random, W, kFills[Random.nextBelow(4)]);
        std::vector<uint64_t> Acc =
            makeWords(Random, W, kFills[Random.nextBelow(4)]);

        std::vector<uint64_t> Expect(W, 0), Got(W, 0);
        bool RefAny = Ref.AndInto(Expect.data(), Src.data(), Bel.data(), W);
        bool GotAny = Table->AndInto(Got.data(), Src.data(), Bel.data(), W);
        EXPECT_EQ(Got, Expect) << "AndInto W=" << W;
        EXPECT_EQ(GotAny, RefAny) << "AndInto any W=" << W;

        // OrAndInto with and without the anchor mask.
        for (const uint64_t *M : {static_cast<const uint64_t *>(nullptr),
                                  static_cast<const uint64_t *>(Mask.data())}) {
          Expect = Acc;
          Got = Acc;
          RefAny = Ref.OrAndInto(Expect.data(), Src.data(), Bel.data(), M, W);
          GotAny = Table->OrAndInto(Got.data(), Src.data(), Bel.data(), M, W);
          EXPECT_EQ(Got, Expect)
              << "OrAndInto W=" << W << " mask=" << (M != nullptr);
          EXPECT_EQ(GotAny, RefAny)
              << "OrAndInto any W=" << W << " mask=" << (M != nullptr);
        }
      }
  }
}

TEST(Simd, FindByteInSetMatchesScalar) {
  const simd::KernelTable &Ref = simd::scalarKernels();
  Rng Random(0x53u);
  for (const simd::KernelTable *Table : compiledTables()) {
    SCOPED_TRACE(Table->Name);
    for (size_t Len : {size_t(0), size_t(1), size_t(2), size_t(15), size_t(16),
                       size_t(17), size_t(31), size_t(32), size_t(33),
                       size_t(100), size_t(257)})
      for (uint32_t NumNeedles : {1u, 2u, 3u, 8u})
        for (int Round = 0; Round < 12; ++Round) {
          // Distinct random needles plus the matching bitmap.
          std::set<uint8_t> NeedleSet;
          while (NeedleSet.size() < NumNeedles)
            NeedleSet.insert(static_cast<uint8_t>(Random.nextBelow(256)));
          std::vector<uint8_t> Needles(NeedleSet.begin(), NeedleSet.end());
          uint64_t Bitmap[4] = {0, 0, 0, 0};
          for (uint8_t B : Needles)
            Bitmap[B >> 6] |= uint64_t(1) << (B & 63);

          // Mostly non-needle bytes so hits land at interesting offsets;
          // some rounds have no hit at all (expect Len).
          std::vector<uint8_t> Data(Len);
          for (uint8_t &B : Data) {
            do
              B = static_cast<uint8_t>(Random.nextBelow(256));
            while (NeedleSet.count(B));
          }
          if (Len > 0 && Random.nextBool(0.7)) {
            size_t Hit = Random.nextBelow(Len);
            Data[Hit] = Needles[Random.nextBelow(Needles.size())];
            // Sometimes plant a second, later hit — first one must win.
            if (Hit + 1 < Len && Random.nextBool(0.5))
              Data[Hit + 1 + Random.nextBelow(Len - Hit - 1)] =
                  Needles[Random.nextBelow(Needles.size())];
          }

          size_t Expect = Ref.FindByteInSet(Data.data(), Len, Needles.data(),
                                            NumNeedles, Bitmap);
          size_t Got = Table->FindByteInSet(Data.data(), Len, Needles.data(),
                                            NumNeedles, Bitmap);
          EXPECT_EQ(Got, Expect) << "Len=" << Len << " needles=" << NumNeedles;
        }
  }
}

TEST(Simd, DynamicBitsetAgreesAcrossLevels) {
  // Model-check the DynamicBitset wrappers under every dispatch level
  // against a std::set-of-bits model, on widths that are deliberately not
  // multiples of 64 or of any lane size.
  Rng Random(0x54u);
  for (simd::Level L : simd::availableLevels()) {
    SCOPED_TRACE(simd::levelName(L));
    ASSERT_TRUE(simd::setLevel(L));
    for (size_t Bits : {size_t(1), size_t(63), size_t(64), size_t(65),
                        size_t(127), size_t(130), size_t(300), size_t(517)})
      for (int Round = 0; Round < 6; ++Round) {
        DynamicBitset A(Bits), B(Bits);
        std::set<size_t> ModelA, ModelB;
        size_t Pop = Random.nextBelow(Bits + 1);
        for (size_t I = 0; I < Pop; ++I) {
          size_t BitA = Random.nextBelow(Bits);
          size_t BitB = Random.nextBelow(Bits);
          A.set(BitA);
          ModelA.insert(BitA);
          B.set(BitB);
          ModelB.insert(BitB);
        }

        EXPECT_EQ(A.count(), ModelA.size());
        EXPECT_EQ(A.any(), !ModelA.empty());
        bool ModelIntersects = false;
        for (size_t Bit : ModelA)
          ModelIntersects |= ModelB.count(Bit) != 0;
        EXPECT_EQ(A.intersects(B), ModelIntersects);

        DynamicBitset Or = A;
        Or |= B;
        std::set<size_t> ModelOr = ModelA;
        ModelOr.insert(ModelB.begin(), ModelB.end());
        EXPECT_EQ(Or.count(), ModelOr.size());
        for (size_t Bit : ModelOr)
          EXPECT_TRUE(Or.test(Bit));

        DynamicBitset And = A;
        And &= B;
        size_t ModelAndCount = 0;
        for (size_t Bit : ModelA)
          if (ModelB.count(Bit)) {
            ++ModelAndCount;
            EXPECT_TRUE(And.test(Bit));
          }
        EXPECT_EQ(And.count(), ModelAndCount);

        DynamicBitset Sub = A;
        Sub.subtract(B);
        size_t ModelSubCount = 0;
        for (size_t Bit : ModelA)
          if (!ModelB.count(Bit)) {
            ++ModelSubCount;
            EXPECT_TRUE(Sub.test(Bit));
          }
        EXPECT_EQ(Sub.count(), ModelSubCount);
      }
  }
  simd::resetToEnv();
}
