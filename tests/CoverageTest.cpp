//===- CoverageTest.cpp - focused edge-case coverage --------------------------===//
//
// Part of the mfsa project. MIT License.
//
// Deep edge-case coverage for behaviours the broader suites exercise only
// incidentally: case folding, exhaustive printer round-trips, self-loop and
// boundary merging, merge-report accounting, determinizer internals, and
// per-dataset parameterized invariants.
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"
#include "engine/DfaEngine.h"
#include "engine/Imfant.h"
#include "fsa/Determinize.h"
#include "fsa/Reference.h"
#include "mfsa/Merge.h"
#include "workload/Datasets.h"
#include "workload/Indel.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <map>

using namespace mfsa;
using namespace mfsa::test;

//===----------------------------------------------------------------------===//
// Case-insensitive matching
//===----------------------------------------------------------------------===//

TEST(CaseFolding, SymbolSetFoldsBothDirections) {
  EXPECT_EQ(SymbolSet::singleton('a').caseFolded(), SymbolSet::of("aA"));
  EXPECT_EQ(SymbolSet::singleton('Z').caseFolded(), SymbolSet::of("zZ"));
  EXPECT_EQ(SymbolSet::singleton('7').caseFolded(), SymbolSet::singleton('7'));
  EXPECT_EQ(SymbolSet::range('a', 'c').caseFolded(),
            SymbolSet::of("abcABC"));
  // Folding is idempotent.
  SymbolSet Folded = SymbolSet::of("gH+").caseFolded();
  EXPECT_EQ(Folded.caseFolded(), Folded);
}

TEST(CaseFolding, ParserOptionAffectsMatching) {
  ParseOptions Insensitive;
  Insensitive.CaseInsensitive = true;
  Result<Regex> Re = parseRegex("Get[a-z]+", Insensitive);
  ASSERT_TRUE(Re.ok());
  EXPECT_EQ(astMatchEnds(*Re, "GETXY"), (std::set<size_t>{4, 5}));
  EXPECT_EQ(astMatchEnds(*Re, "getab"), (std::set<size_t>{4, 5}));
  // The sensitive default stays strict.
  Result<Regex> Strict = parseRegex("Get[a-z]+");
  ASSERT_TRUE(Strict.ok());
  EXPECT_TRUE(astMatchEnds(*Strict, "GETXY").empty());
}

TEST(CaseFolding, PipelineEndToEnd) {
  CompileOptions Options;
  Options.Parse.CaseInsensitive = true;
  Options.MergingFactor = 0;
  Options.EmitAnml = false;
  Result<CompileArtifacts> Artifacts =
      compileRuleset({"alert", "WARNING"}, Options);
  ASSERT_TRUE(Artifacts.ok());
  ImfantEngine Engine(Artifacts->Mfsas[0]);
  MatchRecorder Recorder;
  Engine.run("ALERT warning AlErT", Recorder);
  EXPECT_EQ(Recorder.total(), 3u);
  // Folding also improves merging: ALERT/alert share all transitions.
  Result<CompileArtifacts> Pair =
      compileRuleset({"alert", "ALERT"}, Options);
  ASSERT_TRUE(Pair.ok());
  EXPECT_EQ(Pair->Mfsas[0].numStates(), 6u);
}

//===----------------------------------------------------------------------===//
// Printer round-trip, exhaustively over all byte singletons
//===----------------------------------------------------------------------===//

TEST(Printer, EveryByteSingletonRoundTrips) {
  for (unsigned C = 0; C < 256; ++C) {
    SymbolSet Single = SymbolSet::singleton(static_cast<unsigned char>(C));
    std::string Printed = Single.toString();
    Result<Regex> Re = parseRegex(Printed);
    ASSERT_TRUE(Re.ok()) << "byte " << C << " printed as '" << Printed << "'";
    ASSERT_EQ(Re->Root->kind(), AstKind::Symbols) << Printed;
    EXPECT_EQ(static_cast<const SymbolsNode &>(*Re->Root).symbols(), Single)
        << "byte " << C;
  }
}

TEST(Printer, RandomClassesRoundTripThroughParser) {
  Rng Random(2027);
  for (int Trial = 0; Trial < 200; ++Trial) {
    SymbolSet Set;
    unsigned Count = 2 + Random.nextBelow(40);
    for (unsigned I = 0; I < Count; ++I)
      Set.insert(static_cast<unsigned char>(Random.nextBelow(256)));
    std::string Printed = Set.toString();
    Result<Regex> Re = parseRegex(Printed);
    ASSERT_TRUE(Re.ok()) << Printed;
    ASSERT_EQ(Re->Root->kind(), AstKind::Symbols) << Printed;
    EXPECT_EQ(static_cast<const SymbolsNode &>(*Re->Root).symbols(), Set)
        << Printed;
  }
}

//===----------------------------------------------------------------------===//
// Merging edge cases
//===----------------------------------------------------------------------===//

namespace {

Mfsa mergeTwo(const std::string &A, const std::string &B,
              MergeReport *Report = nullptr) {
  std::vector<Nfa> Fsas = {compileOptimized(A), compileOptimized(B)};
  return mergeFsas(Fsas, {0, 1}, MergeOptions(), Report);
}

} // namespace

TEST(MergeEdge, SelfLoopsOnlyMergeWithSelfLoops) {
  // a+b has a self-loop on a; ab does not. The merged MFSA must keep both
  // languages exact.
  Mfsa Z = mergeTwo("a+b", "ab");
  ASSERT_EQ(Z.verify(), "");
  EXPECT_EQ(simulateNfa(Z.extractRule(0), "aaab"), (std::set<size_t>{4}));
  EXPECT_EQ(simulateNfa(Z.extractRule(1), "aaab"), (std::set<size_t>{4}));
  EXPECT_EQ(simulateNfa(Z.extractRule(1), "ab"), (std::set<size_t>{2}));
}

TEST(MergeEdge, BothCyclicRulesShareLoops) {
  MergeReport Report;
  Mfsa Z = mergeTwo("x[ab]*y", "x[ab]*z", &Report);
  ASSERT_EQ(Z.verify(), "");
  EXPECT_GT(Report.TransitionsShared, 0u);
  Rng Random(3001);
  for (int Trial = 0; Trial < 10; ++Trial) {
    std::string Input = "x" + randomInput(Random, 6) + "yz";
    for (RuleId R = 0; R < 2; ++R) {
      Result<Regex> Re = parseRegex(R == 0 ? "x[ab]*y" : "x[ab]*z");
      ASSERT_TRUE(Re.ok());
      EXPECT_EQ(simulateNfa(Z.extractRule(R), Input),
                astMatchEnds(*Re, Input));
    }
  }
}

TEST(MergeEdge, ReportCountersAreConsistent) {
  MergeReport Report;
  Mfsa Z = mergeTwo("abcdef", "abcdef", &Report);
  // Identical rules: every state and transition of the incoming FSA shared.
  EXPECT_EQ(Report.StatesShared, 7u);
  EXPECT_EQ(Report.TransitionsShared, 6u);
  EXPECT_GT(Report.SeedsAccepted, 0u);
  EXPECT_GE(Report.CandidatePairsTried, Report.SeedsAccepted);
  EXPECT_EQ(Z.numStates(), 7u);
}

TEST(MergeEdge, MinSubpathLengthBoundary) {
  // Shared prefix of exactly 2 singleton transitions: rejected at the
  // default length 3, accepted at 2.
  std::vector<Nfa> Fsas = {compileOptimized("abx"), compileOptimized("aby")};
  MergeOptions Len3;
  Len3.MinSubpathLength = 3;
  Mfsa Strict = mergeFsas(Fsas, {0, 1}, Len3);
  EXPECT_EQ(Strict.numStates(), 8u); // disjoint

  MergeOptions Len2;
  Len2.MinSubpathLength = 2;
  Mfsa Loose = mergeFsas(Fsas, {0, 1}, Len2);
  EXPECT_EQ(Loose.numStates(), 5u); // ab prefix shared
}

TEST(MergeEdge, CcSeedsExemptFromLengthRule) {
  // A single shared CC transition merges even under a strict length rule.
  std::vector<Nfa> Fsas = {compileOptimized("[ab]x"),
                           compileOptimized("[ab]y")};
  MergeOptions Strict;
  Strict.MinSubpathLength = 5;
  Mfsa Z = mergeFsas(Fsas, {0, 1}, Strict);
  EXPECT_EQ(Z.numStates(), 4u);
}

TEST(MergeEdge, MultipleFinalStatesSurvive) {
  Mfsa Z = mergeTwo("ab(c|dd)", "ab");
  ASSERT_EQ(Z.verify(), "");
  // Rule 0 has two distinct accepting paths; both must report.
  EXPECT_EQ(simulateNfa(Z.extractRule(0), "abc abdd"),
            (std::set<size_t>{3, 8}));
}

TEST(MergeEdge, VerifyAgainstInputsDetectsDrift) {
  std::vector<Nfa> Fsas = {compileOptimized("abc"), compileOptimized("abd")};
  Mfsa Z = mergeFsas(Fsas, {0, 1});
  EXPECT_EQ(Z.verifyAgainstInputs(Fsas), "");
  // Wrong inputs are flagged.
  std::vector<Nfa> Wrong = {compileOptimized("abcdef"),
                            compileOptimized("abd")};
  EXPECT_NE(Z.verifyAgainstInputs(Wrong), "");
  EXPECT_NE(Z.verifyAgainstInputs({Fsas[0]}), "");
}

//===----------------------------------------------------------------------===//
// Determinizer internals
//===----------------------------------------------------------------------===//

TEST(DeterminizeDetail, AtomMappingCoversAllBytes) {
  std::vector<Nfa> Fsas = {compileOptimized("[a-f]x|z")};
  Result<Dfa> D = determinize(Fsas, {0});
  ASSERT_TRUE(D.ok());
  ASSERT_EQ(D->AtomOfByte.size(), 256u);
  for (unsigned C = 0; C < 256; ++C)
    EXPECT_LT(D->AtomOfByte[C], D->NumAtoms);
  // Bytes inside one class map to one atom; distinct behaviour splits.
  EXPECT_EQ(D->AtomOfByte['a'], D->AtomOfByte['f']);
  EXPECT_NE(D->AtomOfByte['a'], D->AtomOfByte['x']);
  EXPECT_NE(D->AtomOfByte['x'], D->AtomOfByte['z']);
  EXPECT_EQ(D->AtomOfByte['!'], D->AtomOfByte['~']); // both unused
}

TEST(DeterminizeDetail, TableIsTotal) {
  std::vector<Nfa> Fsas = {compileOptimized("ab|cd")};
  Result<Dfa> D = determinize(Fsas, {0});
  ASSERT_TRUE(D.ok());
  ASSERT_EQ(D->Next.size(),
            static_cast<size_t>(D->NumStates) * D->NumAtoms);
  for (uint32_t Target : D->Next)
    EXPECT_LT(Target, D->NumStates);
}

TEST(DeterminizeDetail, FootprintReflectsStateCount) {
  std::vector<Nfa> Small = {compileOptimized("ab")};
  std::vector<Nfa> Large = {compileOptimized("[ab][cd][ef][gh][ij]")};
  Result<Dfa> DS = determinize(Small, {0});
  Result<Dfa> DL = determinize(Large, {0});
  ASSERT_TRUE(DS.ok());
  ASSERT_TRUE(DL.ok());
  EXPECT_GT(DL->footprintBytes(), DS->footprintBytes());
}

//===----------------------------------------------------------------------===//
// Per-dataset parameterized invariants
//===----------------------------------------------------------------------===//

class DatasetInvariants : public ::testing::TestWithParam<const char *> {};

TEST_P(DatasetInvariants, TableOneShapeSane) {
  const DatasetSpec &Spec = *findDataset(GetParam());
  std::vector<std::string> Rules = generateRuleset(Spec);
  EXPECT_EQ(Rules.size(), Spec.NumRes);

  CompileOptions Options;
  Options.MergingFactor = 1;
  Options.EmitAnml = false;
  Result<CompileArtifacts> Artifacts = compileRuleset(Rules, Options);
  ASSERT_TRUE(Artifacts.ok());

  uint64_t States = 0, Transitions = 0;
  for (const Nfa &A : Artifacts->OptimizedFsas) {
    EXPECT_FALSE(A.hasEpsilons());
    EXPECT_GT(A.numStates(), 1u);
    States += A.numStates();
    Transitions += A.numTransitions();
  }
  double AvgStates = static_cast<double>(States) / Spec.NumRes;
  // Calibration guard: average FSA size within 2x of the paper's Table I
  // figure for the dataset family (9-45 states per FSA).
  EXPECT_GT(AvgStates, 5.0) << GetParam();
  EXPECT_LT(AvgStates, 90.0) << GetParam();
  EXPECT_GT(Transitions, 0u);
}

TEST_P(DatasetInvariants, CompressionMonotoneInM) {
  const DatasetSpec &Spec = *findDataset(GetParam());
  std::vector<std::string> Rules = generateRuleset(Spec);
  CompileOptions Options;
  Options.MergingFactor = 1;
  Options.EmitAnml = false;
  Result<CompileArtifacts> Artifacts = compileRuleset(Rules, Options);
  ASSERT_TRUE(Artifacts.ok());

  uint64_t Prev = UINT64_MAX;
  for (uint32_t M : {1u, 10u, 100u, 0u}) {
    uint64_t States =
        computeSetStats(mergeInGroups(Artifacts->OptimizedFsas, M))
            .TotalStates;
    EXPECT_LE(States, Prev) << GetParam() << " M=" << M;
    Prev = States;
  }
}

TEST_P(DatasetInvariants, SimilarityInPlausibleBand) {
  const DatasetSpec &Spec = *findDataset(GetParam());
  std::vector<std::string> Rules = generateRuleset(Spec);
  double Similarity = averagePairSimilarity(Rules, 20000, Spec.Seed);
  // Fig. 1 band: non-trivial but far from identical rules.
  EXPECT_GT(Similarity, 0.05) << GetParam();
  EXPECT_LT(Similarity, 0.75) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Datasets, DatasetInvariants,
                         ::testing::Values("BRO", "DS9", "PEN", "PRO", "RG1",
                                           "TCP"));

//===----------------------------------------------------------------------===//
// Rule-count word boundaries (the engine's SingleWord fast-path dispatch)
//===----------------------------------------------------------------------===//

namespace {

/// N distinct two-letter rules: "aa", "ab", ..., wrapping through a 5-letter
/// alphabet so many rules share prefixes (plenty of merging).
std::vector<std::string> boundaryRules(unsigned Count) {
  std::vector<std::string> Rules;
  static const char Alphabet[] = "abcde";
  for (unsigned I = 0; I < Count; ++I) {
    std::string Rule;
    Rule.push_back(Alphabet[I % 5]);
    Rule.push_back(Alphabet[(I / 5) % 5]);
    Rule.push_back(Alphabet[(I / 25) % 5]);
    Rules.push_back(Rule);
  }
  return Rules;
}

} // namespace

class WordBoundary : public ::testing::TestWithParam<unsigned> {};

TEST_P(WordBoundary, EngineMatchesOracleAtRuleCount) {
  const unsigned Count = GetParam();
  std::vector<std::string> Rules = boundaryRules(Count);
  std::vector<Nfa> Fsas;
  std::vector<uint32_t> Ids;
  for (unsigned I = 0; I < Count; ++I) {
    Fsas.push_back(compileOptimized(Rules[I]));
    Ids.push_back(I);
  }
  Mfsa Z = mergeFsas(Fsas, Ids);
  ASSERT_EQ(Z.numRules(), Count);
  ImfantEngine Engine(Z);

  Rng Random(5000 + Count);
  for (int Trial = 0; Trial < 5; ++Trial) {
    std::string Input = randomInput(Random, 30);
    MatchRecorder Recorder(MatchRecorder::Mode::Collect);
    Engine.run(Input, Recorder);
    std::map<uint32_t, std::set<size_t>> Got;
    for (const auto &[Rule, End] : Recorder.matches())
      Got[Rule].insert(static_cast<size_t>(End));

    std::map<uint32_t, std::set<size_t>> Expected;
    for (unsigned I = 0; I < Count; ++I) {
      // Exact-string rules: compute ends directly.
      std::set<size_t> Ends;
      for (size_t Pos = 0; Pos + Rules[I].size() <= Input.size(); ++Pos)
        if (Input.compare(Pos, Rules[I].size(), Rules[I]) == 0)
          Ends.insert(Pos + Rules[I].size());
      if (!Ends.empty())
        Expected[I] = Ends;
    }
    EXPECT_EQ(Got, Expected) << Count << " rules, input " << Input;
  }
}

// 63/64 exercise the last single-word ids, 65 the first two-word MFSA,
// 128/129 the second boundary.
INSTANTIATE_TEST_SUITE_P(Boundaries, WordBoundary,
                         ::testing::Values(1u, 63u, 64u, 65u, 127u, 128u,
                                           129u));
