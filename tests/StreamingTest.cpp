//===- StreamingTest.cpp - chunked scanning and stride-2 DFA tests -----------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "engine/DfaEngine.h"
#include "engine/Imfant.h"
#include "engine/MultiStride.h"
#include "fsa/Determinize.h"
#include "fsa/Passes.h"
#include "mfsa/Merge.h"
#include "regex/Parser.h"
#include "workload/Datasets.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <map>

using namespace mfsa;
using namespace mfsa::test;

namespace {

Mfsa mergePatterns(const std::vector<std::string> &Patterns) {
  std::vector<Nfa> Fsas;
  std::vector<uint32_t> Ids;
  for (size_t I = 0; I < Patterns.size(); ++I) {
    Fsas.push_back(compileOptimized(Patterns[I]));
    Ids.push_back(static_cast<uint32_t>(I));
  }
  return mergeFsas(Fsas, Ids);
}

using Matches = std::vector<std::pair<uint32_t, uint64_t>>;

Matches oneShot(const ImfantEngine &Engine, const std::string &Input) {
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  Engine.run(Input, Recorder);
  Matches Out = Recorder.matches();
  std::sort(Out.begin(), Out.end());
  return Out;
}

Matches chunked(const ImfantEngine &Engine, const std::string &Input,
                const std::vector<size_t> &ChunkSizes) {
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  ImfantEngine::Scanner Scan(Engine);
  size_t Pos = 0;
  size_t ChunkIdx = 0;
  while (Pos < Input.size()) {
    size_t Len = ChunkSizes.empty()
                     ? Input.size()
                     : std::min(ChunkSizes[ChunkIdx % ChunkSizes.size()],
                                Input.size() - Pos);
    if (Len == 0)
      Len = 1;
    Scan.feed(std::string_view(Input).substr(Pos, Len), Recorder);
    Pos += Len;
    ++ChunkIdx;
  }
  Scan.finish(Recorder);
  Matches Out = Recorder.matches();
  std::sort(Out.begin(), Out.end());
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Streaming scanner
//===----------------------------------------------------------------------===//

TEST(Scanner, ChunkedEqualsOneShot) {
  Mfsa Z = mergePatterns({"abcd", "bc", "a[bc]+d"});
  ImfantEngine Engine(Z);
  std::string Input = "xxabcdyyabcbcd";
  Matches Reference = oneShot(Engine, Input);
  for (const std::vector<size_t> &Chunks :
       {std::vector<size_t>{1}, {2}, {3}, {5}, {1, 7}, {100}})
    EXPECT_EQ(chunked(Engine, Input, Chunks), Reference);
}

TEST(Scanner, MatchSpanningChunkBoundary) {
  Mfsa Z = mergePatterns({"hello"});
  ImfantEngine Engine(Z);
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  ImfantEngine::Scanner Scan(Engine);
  Scan.feed("xxhel", Recorder);
  EXPECT_EQ(Recorder.total(), 0u);
  Scan.feed("loyy", Recorder);
  Scan.finish(Recorder);
  ASSERT_EQ(Recorder.total(), 1u);
  EXPECT_EQ(Recorder.matches()[0], (std::pair<uint32_t, uint64_t>{0, 7}));
}

TEST(Scanner, AnchorsAcrossChunks) {
  Mfsa Z = mergePatterns({"^ab", "cd$"});
  ImfantEngine Engine(Z);
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  ImfantEngine::Scanner Scan(Engine);
  Scan.feed("a", Recorder);
  Scan.feed("bxc", Recorder);
  // cd is not complete yet and ^ab already matched at absolute offset 2.
  EXPECT_EQ(Recorder.total(), 1u);
  Scan.feed("d", Recorder);
  // cd ends the stream, but only finish() can know that.
  EXPECT_EQ(Recorder.total(), 1u);
  Scan.finish(Recorder);
  ASSERT_EQ(Recorder.total(), 2u);
  EXPECT_EQ(Recorder.matches()[1], (std::pair<uint32_t, uint64_t>{1, 5}));
}

TEST(Scanner, DollarNotReportedMidStream) {
  Mfsa Z = mergePatterns({"ab$"});
  ImfantEngine Engine(Z);
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  ImfantEngine::Scanner Scan(Engine);
  Scan.feed("ab", Recorder);
  Scan.feed("ab", Recorder); // the first "ab" is no longer at the end
  Scan.finish(Recorder);
  ASSERT_EQ(Recorder.total(), 1u);
  EXPECT_EQ(Recorder.matches()[0].second, 4u);
}

TEST(Scanner, OffsetTracksAbsolutePosition) {
  Mfsa Z = mergePatterns({"x"});
  ImfantEngine Engine(Z);
  ImfantEngine::Scanner Scan(Engine);
  MatchRecorder Recorder;
  EXPECT_EQ(Scan.offset(), 0u);
  Scan.feed("abc", Recorder);
  EXPECT_EQ(Scan.offset(), 3u);
  Scan.feed("de", Recorder);
  EXPECT_EQ(Scan.offset(), 5u);
}

TEST(Scanner, RandomChunkingsProperty) {
  Rng Random(811);
  for (int Round = 0; Round < 8; ++Round) {
    std::vector<std::string> Patterns;
    unsigned Count = 2 + Random.nextBelow(3);
    for (unsigned I = 0; I < Count; ++I)
      Patterns.push_back(randomPattern(Random));
    Mfsa Z = mergePatterns(Patterns);
    ImfantEngine Engine(Z);
    std::string Input = randomInput(Random, 60);
    Matches Reference = oneShot(Engine, Input);
    for (int Trial = 0; Trial < 4; ++Trial) {
      std::vector<size_t> Chunks;
      for (int C = 0; C < 5; ++C)
        Chunks.push_back(1 + Random.nextBelow(9));
      EXPECT_EQ(chunked(Engine, Input, Chunks), Reference)
          << "round " << Round;
    }
  }
}

namespace {

/// Feeds \p Input split at \p Cuts — verbatim, INCLUDING zero-length
/// chunks — so empty feeds must leave the carried activation state intact.
Matches chunkedAtCuts(const ImfantEngine &Engine, const std::string &Input,
                      const std::vector<uint64_t> &Cuts) {
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  ImfantEngine::Scanner Scan(Engine);
  for (std::string_view Chunk : chunksFromCuts(Input, Cuts))
    Scan.feed(Chunk, Recorder);
  Scan.finish(Recorder);
  Matches Out = Recorder.matches();
  std::sort(Out.begin(), Out.end());
  return Out;
}

} // namespace

TEST(Scanner, AdversarialChunkingsEqualOneShot) {
  // The shared adversarial chunker (TestHelpers.h) aims cut points at the
  // places carried activation state can be dropped: match ends, mid-match,
  // 1-byte chunks, and empty chunks from duplicate/terminal cuts.
  Rng Random(812);
  for (int Round = 0; Round < 6; ++Round) {
    std::vector<std::string> Patterns;
    unsigned Count = 2 + Random.nextBelow(3);
    for (unsigned I = 0; I < Count; ++I)
      Patterns.push_back(randomPattern(Random));
    Patterns.push_back("^a[ab]*d$"); // anchors under adversarial cuts too
    Mfsa Z = mergePatterns(Patterns);
    ImfantEngine Engine(Z);
    std::string Input = randomInput(Random, 60);
    Matches Reference = oneShot(Engine, Input);
    for (const std::vector<uint64_t> &Cuts :
         adversarialCuts(Random, Input, oracleRuleEnds(Patterns, Input)))
      EXPECT_EQ(chunkedAtCuts(Engine, Input, Cuts), Reference)
          << "round " << Round << " " << formatPatterns(Patterns);
  }
}

TEST(Scanner, MatchStraddlingThreeConsecutiveBoundaries) {
  // One "abcd" occurrence split across four chunks ("xxa|b|c|dxx"): the
  // partial-match activation must survive three consecutive handoffs.
  Mfsa Z = mergePatterns({"abcd", "bc"});
  ImfantEngine Engine(Z);
  std::string Input = "xxabcdxx";
  EXPECT_EQ(chunkedAtCuts(Engine, Input, {3, 4, 5}), oneShot(Engine, Input));
  // The same cuts plus empty chunks at both stream edges.
  EXPECT_EQ(chunkedAtCuts(Engine, Input, {0, 3, 4, 5, 8}),
            oneShot(Engine, Input));
}

TEST(Scanner, StatsAccumulateAcrossFeeds) {
  Mfsa Z = mergePatterns({"aa", "ab"});
  ImfantEngine Engine(Z);
  RunStats Whole;
  MatchRecorder R1;
  Engine.run("aaabab", R1, &Whole);

  RunStats Split;
  MatchRecorder R2;
  ImfantEngine::Scanner Scan(Engine);
  Scan.feed("aaa", R2, &Split);
  Scan.feed("bab", R2, &Split);
  Scan.finish(R2);
  EXPECT_EQ(Split.Steps, Whole.Steps);
  EXPECT_EQ(Split.TransitionsEvaluated, Whole.TransitionsEvaluated);
  EXPECT_EQ(Split.MaxActiveRules, Whole.MaxActiveRules);
  EXPECT_NEAR(Split.AvgActiveRules, Whole.AvgActiveRules, 1e-9);
  EXPECT_EQ(R1.total(), R2.total());
}

//===----------------------------------------------------------------------===//
// Stride-2 DFA
//===----------------------------------------------------------------------===//

namespace {

std::map<uint32_t, std::set<size_t>> dfaEnds(const Dfa &D,
                                             const std::string &Input) {
  DfaEngine Engine(D);
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  Engine.run(Input, Recorder);
  std::map<uint32_t, std::set<size_t>> Ends;
  for (const auto &[Rule, End] : Recorder.matches())
    Ends[Rule].insert(static_cast<size_t>(End));
  return Ends;
}

std::map<uint32_t, std::set<size_t>> stridedEnds(const StridedDfa &D,
                                                 const std::string &Input) {
  StridedDfaEngine Engine(D);
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  Engine.run(Input, Recorder);
  std::map<uint32_t, std::set<size_t>> Ends;
  for (const auto &[Rule, End] : Recorder.matches())
    Ends[Rule].insert(static_cast<size_t>(End));
  return Ends;
}

} // namespace

TEST(MultiStride, EquivalentToStride1) {
  std::vector<std::string> Patterns = {"abc", "a[bc]d", "xy", "b{2,3}"};
  std::vector<Nfa> Fsas;
  std::vector<uint32_t> Ids;
  for (size_t I = 0; I < Patterns.size(); ++I) {
    Fsas.push_back(compileOptimized(Patterns[I]));
    Ids.push_back(static_cast<uint32_t>(I));
  }
  Result<Dfa> D = determinize(Fsas, Ids);
  ASSERT_TRUE(D.ok());
  Result<StridedDfa> S2 = makeStride2(*D);
  ASSERT_TRUE(S2.ok());

  Rng Random(911);
  for (int Trial = 0; Trial < 20; ++Trial) {
    // Both even- and odd-length inputs (odd exercises the trailing byte).
    std::string Input = randomInput(Random, 10 + Random.nextBelow(12));
    EXPECT_EQ(dfaEnds(*D, Input), stridedEnds(*S2, Input)) << Input;
  }
  EXPECT_EQ(dfaEnds(*D, ""), stridedEnds(*S2, ""));
  EXPECT_EQ(dfaEnds(*D, "a"), stridedEnds(*S2, "a"));
}

TEST(MultiStride, AnchoredEndAtOddAndEvenOffsets) {
  std::vector<Nfa> Fsas = {compileOptimized("ab$"),
                           compileOptimized("abc$")};
  Result<Dfa> D = determinize(Fsas, {0, 1});
  ASSERT_TRUE(D.ok());
  Result<StridedDfa> S2 = makeStride2(*D);
  ASSERT_TRUE(S2.ok());
  // Even-length input: `$` fires on the full-stride boundary.
  EXPECT_EQ(stridedEnds(*S2, "xxab"), dfaEnds(*D, "xxab"));
  // Odd-length input: `$` fires on the trailing half-stride.
  EXPECT_EQ(stridedEnds(*S2, "xxxab"), dfaEnds(*D, "xxxab"));
  EXPECT_EQ(stridedEnds(*S2, "xxabc"), dfaEnds(*D, "xxabc"));
}

TEST(MultiStride, TableBlowupCapTriggers) {
  std::vector<Nfa> Fsas = {compileOptimized("[a-z]{4}[0-9]{3}x")};
  Result<Dfa> D = determinize(Fsas, {0});
  ASSERT_TRUE(D.ok());
  StrideOptions Options;
  Options.MaxTableEntries = 16;
  Result<StridedDfa> S2 = makeStride2(*D, Options);
  ASSERT_FALSE(S2.ok());
  EXPECT_NE(S2.diag().Message.find("blowup"), std::string::npos);
}

TEST(MultiStride, QuadraticTableGrowth) {
  std::vector<Nfa> Fsas = {compileOptimized("abc[def]g")};
  Result<Dfa> D = determinize(Fsas, {0});
  ASSERT_TRUE(D.ok());
  Result<StridedDfa> S2 = makeStride2(*D);
  ASSERT_TRUE(S2.ok());
  EXPECT_EQ(S2->Next2.size(), static_cast<size_t>(D->NumStates) *
                                  D->NumAtoms * D->NumAtoms);
  EXPECT_GT(S2->footprintBytes(), D->footprintBytes());
}
