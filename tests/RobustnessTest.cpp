//===- RobustnessTest.cpp - fuzz-style robustness tests ----------------------===//
//
// Part of the mfsa project. MIT License.
//
// The front-end and the ANML reader consume untrusted input; these tests
// hammer them with garbage and mutations. The invariant is never "rejects" —
// it is "never crashes, and whatever is accepted behaves consistently".
//
//===----------------------------------------------------------------------===//

#include "anml/Anml.h"
#include "compiler/Pipeline.h"
#include "engine/Imfant.h"
#include "fsa/Builder.h"
#include "fsa/Passes.h"
#include "fsa/Reference.h"
#include "mfsa/Merge.h"
#include "regex/Parser.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace mfsa;
using namespace mfsa::test;

namespace {

/// Random bytes over the full 0..255 range, newline-free to keep failure
/// messages printable-ish.
std::string randomBytes(Rng &Random, size_t Length) {
  std::string Out;
  Out.reserve(Length);
  for (size_t I = 0; I < Length; ++I) {
    unsigned char C = static_cast<unsigned char>(Random.nextBelow(256));
    Out.push_back(static_cast<char>(C == '\n' ? ' ' : C));
  }
  return Out;
}

/// Random strings biased toward RE metacharacters so the parser's error
/// paths actually trigger.
std::string randomMetaSoup(Rng &Random, size_t Length) {
  static const char Soup[] = "()[]{}|*+?^$-\\.,abz09";
  std::string Out;
  Out.reserve(Length);
  for (size_t I = 0; I < Length; ++I)
    Out.push_back(Soup[Random.nextBelow(sizeof(Soup) - 1)]);
  return Out;
}

} // namespace

TEST(Robustness, ParserSurvivesMetaSoup) {
  Rng Random(1001);
  unsigned Accepted = 0;
  for (int Trial = 0; Trial < 2000; ++Trial) {
    std::string Pattern = randomMetaSoup(Random, 1 + Random.nextBelow(24));
    Result<Regex> Re = parseRegex(Pattern);
    if (!Re.ok())
      continue;
    ++Accepted;
    // Whatever parses must build, optimize, and round-trip stably.
    Result<Nfa> Built = buildNfa(*Re);
    if (!Built.ok())
      continue; // bound cap may trigger; that is a clean diagnostic
    Nfa Optimized = optimizeForMerging(*Built);
    std::string Printed = printAst(*Re->Root);
    Result<Regex> Again = parseRegex(Printed);
    ASSERT_TRUE(Again.ok()) << "printer output unparsable: " << Printed;
    EXPECT_EQ(printAst(*Again->Root), Printed) << Pattern;
  }
  // Sanity: the soup isn't rejecting everything (the fuzz would be vacuous).
  EXPECT_GT(Accepted, 100u);
}

TEST(Robustness, ParserSurvivesRawBytes) {
  Rng Random(1009);
  for (int Trial = 0; Trial < 1000; ++Trial) {
    std::string Pattern = randomBytes(Random, 1 + Random.nextBelow(32));
    Result<Regex> Re = parseRegex(Pattern); // must not crash
    if (Re.ok())
      EXPECT_NE(Re->Root, nullptr);
  }
}

TEST(Robustness, AcceptedGarbageMatchesItsOwnSemantics) {
  // For accepted random patterns, the three semantic layers must agree on
  // random inputs — garbage in, consistency out.
  Rng Random(1013);
  int Checked = 0;
  for (int Trial = 0; Trial < 400 && Checked < 60; ++Trial) {
    std::string Pattern = randomMetaSoup(Random, 1 + Random.nextBelow(12));
    Result<Regex> Re = parseRegex(Pattern);
    if (!Re.ok())
      continue;
    Result<Nfa> Built = buildNfa(*Re);
    if (!Built.ok())
      continue;
    if (Built->numStates() > 300)
      continue; // keep the oracle affordable
    ++Checked;
    Nfa Optimized = optimizeForMerging(*Built);
    std::string Input = randomBytes(Random, 16);
    EXPECT_EQ(astMatchEnds(*Re, Input), simulateNfa(Optimized, Input))
        << Pattern;
  }
  EXPECT_GT(Checked, 20);
}

TEST(Robustness, AnmlReaderSurvivesMutations) {
  // Start from a valid document and apply random point mutations.
  std::vector<Nfa> Fsas = {compileOptimized("ab[cd]e{1,2}"),
                           compileOptimized("xy|z")};
  Mfsa Z = mergeFsas(Fsas, {0, 1});
  std::string Document = writeAnml(Z, "fuzz");

  Rng Random(1019);
  for (int Trial = 0; Trial < 1500; ++Trial) {
    std::string Mutated = Document;
    unsigned Mutations = 1 + Random.nextBelow(4);
    for (unsigned M = 0; M < Mutations; ++M) {
      size_t Pos = Random.nextBelow(Mutated.size());
      switch (Random.nextBelow(3)) {
      case 0: // flip a byte
        Mutated[Pos] = static_cast<char>(Random.nextBelow(128));
        break;
      case 1: // truncate
        Mutated.resize(Pos);
        break;
      default: // duplicate a slice
        Mutated.insert(Pos, Mutated.substr(Pos, Random.nextBelow(8)));
        break;
      }
      if (Mutated.empty())
        break;
    }
    Result<Mfsa> Back = readAnml(Mutated); // must not crash
    if (Back.ok())
      EXPECT_EQ(Back->verify(), ""); // accepted => internally consistent
  }
}

TEST(Robustness, EngineHandlesFullByteRange) {
  // Transitions over the whole byte alphabet, input over the whole byte
  // alphabet, including NUL.
  std::vector<Nfa> Fsas = {compileOptimized("\\x00\\xff"),
                           compileOptimized("[\\x00-\\x1f]{2}"),
                           compileOptimized(".a")};
  Mfsa Z = mergeFsas(Fsas, {0, 1, 2});
  ImfantEngine Engine(Z);

  std::string Input;
  Input.push_back('\0');
  Input.push_back('\xff');
  Input.push_back('\0');
  Input.push_back('\x01');
  Input.push_back('a');
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  Engine.run(Input, Recorder);

  std::set<std::pair<uint32_t, uint64_t>> Got(Recorder.matches().begin(),
                                              Recorder.matches().end());
  // \x00\xff at offset 2; [\x00-\x1f]{2} at 4 (\x00\x01); .a at 5 (\x01 a).
  EXPECT_TRUE(Got.count({0, 2}));
  EXPECT_TRUE(Got.count({1, 4}));
  EXPECT_TRUE(Got.count({2, 5}));
}

TEST(Robustness, PipelineRejectsWithoutLeakingState) {
  // A ruleset failing mid-way must produce a clean diagnostic regardless of
  // how many rules preceded the bad one.
  for (int Prefix = 0; Prefix < 5; ++Prefix) {
    std::vector<std::string> Patterns(Prefix, "good");
    Patterns.push_back("bad[");
    Result<CompileArtifacts> Artifacts = compileRuleset(Patterns);
    ASSERT_FALSE(Artifacts.ok());
    EXPECT_NE(Artifacts.diag().Message.find("rule " + std::to_string(Prefix)),
              std::string::npos);
  }
}

TEST(Robustness, HugeClassAndDeepNesting) {
  // Deep nesting and full-range classes stress the recursive descent.
  const int Depth = 200;
  std::string Deep;
  for (int I = 0; I < Depth; ++I)
    Deep += "(a";
  Deep += "b";
  for (int I = 0; I < Depth; ++I)
    Deep += ")";
  Result<Regex> Re = parseRegex(Deep);
  ASSERT_TRUE(Re.ok());
  Result<Nfa> Built = buildNfa(*Re);
  ASSERT_TRUE(Built.ok());
  // The language is exactly Depth a's followed by b.
  std::string Match(Depth, 'a');
  Match += 'b';
  EXPECT_EQ(simulateNfa(*Built, Match), (std::set<size_t>{Match.size()}));
  EXPECT_TRUE(simulateNfa(*Built, Match.substr(1)).empty());

  Result<Regex> Wide = parseRegex("[\\x00-\\xff]{3}");
  ASSERT_TRUE(Wide.ok());
  Nfa WideFsa = optimizeForMerging(*buildNfa(*Wide));
  EXPECT_EQ(simulateNfa(WideFsa, "xyz"), (std::set<size_t>{3}));
}
