//===- RobustnessTest.cpp - fuzz-style robustness tests ----------------------===//
//
// Part of the mfsa project. MIT License.
//
// The front-end and the ANML reader consume untrusted input; these tests
// hammer them with garbage and mutations. The invariant is never "rejects" —
// it is "never crashes, and whatever is accepted behaves consistently".
//
//===----------------------------------------------------------------------===//

#include "anml/Anml.h"
#include "compiler/Pipeline.h"
#include "engine/Imfant.h"
#include "engine/Parallel.h"
#include "fsa/Builder.h"
#include "fsa/Passes.h"
#include "fsa/Reference.h"
#include "mfsa/Merge.h"
#include "regex/Parser.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>

using namespace mfsa;
using namespace mfsa::test;

namespace {

/// Random bytes over the full 0..255 range, newline-free to keep failure
/// messages printable-ish.
std::string randomBytes(Rng &Random, size_t Length) {
  std::string Out;
  Out.reserve(Length);
  for (size_t I = 0; I < Length; ++I) {
    unsigned char C = static_cast<unsigned char>(Random.nextBelow(256));
    Out.push_back(static_cast<char>(C == '\n' ? ' ' : C));
  }
  return Out;
}

/// Random strings biased toward RE metacharacters so the parser's error
/// paths actually trigger.
std::string randomMetaSoup(Rng &Random, size_t Length) {
  static const char Soup[] = "()[]{}|*+?^$-\\.,abz09";
  std::string Out;
  Out.reserve(Length);
  for (size_t I = 0; I < Length; ++I)
    Out.push_back(Soup[Random.nextBelow(sizeof(Soup) - 1)]);
  return Out;
}

} // namespace

TEST(Robustness, ParserSurvivesMetaSoup) {
  Rng Random(1001);
  unsigned Accepted = 0;
  for (int Trial = 0; Trial < 2000; ++Trial) {
    std::string Pattern = randomMetaSoup(Random, 1 + Random.nextBelow(24));
    Result<Regex> Re = parseRegex(Pattern);
    if (!Re.ok())
      continue;
    ++Accepted;
    // Whatever parses must build, optimize, and round-trip stably.
    Result<Nfa> Built = buildNfa(*Re);
    if (!Built.ok())
      continue; // bound cap may trigger; that is a clean diagnostic
    Nfa Optimized = optimizeForMerging(*Built);
    std::string Printed = printAst(*Re->Root);
    Result<Regex> Again = parseRegex(Printed);
    ASSERT_TRUE(Again.ok()) << "printer output unparsable: " << Printed;
    EXPECT_EQ(printAst(*Again->Root), Printed) << Pattern;
  }
  // Sanity: the soup isn't rejecting everything (the fuzz would be vacuous).
  EXPECT_GT(Accepted, 100u);
}

TEST(Robustness, ParserSurvivesRawBytes) {
  Rng Random(1009);
  for (int Trial = 0; Trial < 1000; ++Trial) {
    std::string Pattern = randomBytes(Random, 1 + Random.nextBelow(32));
    Result<Regex> Re = parseRegex(Pattern); // must not crash
    if (Re.ok())
      EXPECT_NE(Re->Root, nullptr);
  }
}

TEST(Robustness, AcceptedGarbageMatchesItsOwnSemantics) {
  // For accepted random patterns, the three semantic layers must agree on
  // random inputs — garbage in, consistency out.
  Rng Random(1013);
  int Checked = 0;
  for (int Trial = 0; Trial < 400 && Checked < 60; ++Trial) {
    std::string Pattern = randomMetaSoup(Random, 1 + Random.nextBelow(12));
    Result<Regex> Re = parseRegex(Pattern);
    if (!Re.ok())
      continue;
    Result<Nfa> Built = buildNfa(*Re);
    if (!Built.ok())
      continue;
    if (Built->numStates() > 300)
      continue; // keep the oracle affordable
    ++Checked;
    Nfa Optimized = optimizeForMerging(*Built);
    std::string Input = randomBytes(Random, 16);
    EXPECT_EQ(astMatchEnds(*Re, Input), simulateNfa(Optimized, Input))
        << Pattern;
  }
  EXPECT_GT(Checked, 20);
}

TEST(Robustness, AnmlReaderSurvivesMutations) {
  // Start from a valid document and apply random point mutations.
  std::vector<Nfa> Fsas = {compileOptimized("ab[cd]e{1,2}"),
                           compileOptimized("xy|z")};
  Mfsa Z = mergeFsas(Fsas, {0, 1});
  std::string Document = writeAnml(Z, "fuzz");

  Rng Random(1019);
  for (int Trial = 0; Trial < 1500; ++Trial) {
    std::string Mutated = Document;
    unsigned Mutations = 1 + Random.nextBelow(4);
    for (unsigned M = 0; M < Mutations; ++M) {
      size_t Pos = Random.nextBelow(Mutated.size());
      switch (Random.nextBelow(3)) {
      case 0: // flip a byte
        Mutated[Pos] = static_cast<char>(Random.nextBelow(128));
        break;
      case 1: // truncate
        Mutated.resize(Pos);
        break;
      default: // duplicate a slice
        Mutated.insert(Pos, Mutated.substr(Pos, Random.nextBelow(8)));
        break;
      }
      if (Mutated.empty())
        break;
    }
    Result<Mfsa> Back = readAnml(Mutated); // must not crash
    if (Back.ok())
      EXPECT_EQ(Back->verify(), ""); // accepted => internally consistent
  }
}

TEST(Robustness, EngineHandlesFullByteRange) {
  // Transitions over the whole byte alphabet, input over the whole byte
  // alphabet, including NUL.
  std::vector<Nfa> Fsas = {compileOptimized("\\x00\\xff"),
                           compileOptimized("[\\x00-\\x1f]{2}"),
                           compileOptimized(".a")};
  Mfsa Z = mergeFsas(Fsas, {0, 1, 2});
  ImfantEngine Engine(Z);

  std::string Input;
  Input.push_back('\0');
  Input.push_back('\xff');
  Input.push_back('\0');
  Input.push_back('\x01');
  Input.push_back('a');
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  Engine.run(Input, Recorder);

  std::set<std::pair<uint32_t, uint64_t>> Got(Recorder.matches().begin(),
                                              Recorder.matches().end());
  // \x00\xff at offset 2; [\x00-\x1f]{2} at 4 (\x00\x01); .a at 5 (\x01 a).
  EXPECT_TRUE(Got.count({0, 2}));
  EXPECT_TRUE(Got.count({1, 4}));
  EXPECT_TRUE(Got.count({2, 5}));
}

TEST(Robustness, PipelineRejectsWithoutLeakingState) {
  // A ruleset failing mid-way must produce a clean diagnostic regardless of
  // how many rules preceded the bad one.
  for (int Prefix = 0; Prefix < 5; ++Prefix) {
    std::vector<std::string> Patterns(Prefix, "good");
    Patterns.push_back("bad[");
    Result<CompileArtifacts> Artifacts = compileRuleset(Patterns);
    ASSERT_FALSE(Artifacts.ok());
    EXPECT_NE(Artifacts.diag().Message.find("rule " + std::to_string(Prefix)),
              std::string::npos);
  }
}

TEST(Robustness, IsolatePolicySurvivesMixedGarbageRulesets) {
  // Fuzz the fault-isolating pipeline: rulesets mixing healthy patterns,
  // meta-soup garbage, and the occasional expansion bomb. Invariants:
  //  - compileRuleset never fails under Isolate (empty survivor set is fine),
  //  - CompiledRuleIds and Quarantined partition the input ruleset,
  //  - every surviving rule matches its brute-force oracle on random input,
  //    reported under its *original* index.
  Rng Random(2003);
  static const char *Healthy[] = {"abc", "a[bc]+d", "x.?y", "q{1,3}z", "m|n"};
  for (int Trial = 0; Trial < 40; ++Trial) {
    std::vector<std::string> Patterns;
    size_t NumRules = 2 + Random.nextBelow(6);
    for (size_t I = 0; I < NumRules; ++I) {
      switch (Random.nextBelow(4)) {
      case 0:
        Patterns.push_back(randomMetaSoup(Random, 1 + Random.nextBelow(10)));
        break;
      case 1:
        Patterns.push_back("a{400}{400}"); // budget buster
        break;
      default:
        Patterns.push_back(Healthy[Random.nextBelow(5)]);
        break;
      }
    }

    CompileOptions Options;
    Options.Policy = FailurePolicy::Isolate;
    Options.MergingFactor = 1 + Random.nextBelow(3);
    Result<CompileArtifacts> Artifacts = compileRuleset(Patterns, Options);
    ASSERT_TRUE(Artifacts.ok());

    // Partition invariant.
    std::set<uint32_t> Seen;
    for (uint32_t Id : Artifacts->CompiledRuleIds)
      EXPECT_TRUE(Seen.insert(Id).second);
    for (const QuarantinedRule &Q : Artifacts->Quarantined)
      EXPECT_TRUE(Seen.insert(Q.RuleIndex).second);
    EXPECT_EQ(Seen.size(), Patterns.size());

    // Oracle agreement on random input, keyed by original indices.
    std::string Input = randomBytes(Random, 24);
    std::map<uint32_t, std::set<size_t>> Expected;
    for (uint32_t Id : Artifacts->CompiledRuleIds) {
      Result<Regex> Re = parseRegex(Patterns[Id]);
      ASSERT_TRUE(Re.ok()); // survivors parsed once already
      std::set<size_t> Ends = astMatchEnds(*Re, Input);
      if (!Ends.empty())
        Expected[Id] = Ends;
    }
    std::map<uint32_t, std::set<size_t>> Got;
    for (const Mfsa &Z : Artifacts->Mfsas) {
      ImfantEngine Engine(Z);
      MatchRecorder Recorder(MatchRecorder::Mode::Collect);
      Engine.run(Input, Recorder);
      for (auto &[Rule, End] : Recorder.matches())
        Got[Rule].insert(static_cast<size_t>(End));
    }
    EXPECT_EQ(Got, Expected);
  }
}

TEST(Robustness, ExpansionBombIsQuarantinedNotFatal) {
  // a{1000}{1000} would be a million states; the per-rule budget turns it
  // into a quarantine entry instead of an allocation storm.
  std::vector<std::string> Patterns = {"safe", "a{1000}{1000}"};
  CompileOptions Options;
  Options.Policy = FailurePolicy::Isolate;
  Options.Budget.MaxFsaStates = 10000;
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns, Options);
  ASSERT_TRUE(Artifacts.ok());
  ASSERT_EQ(Artifacts->Quarantined.size(), 1u);
  EXPECT_EQ(Artifacts->Quarantined[0].RuleIndex, 1u);
  EXPECT_EQ(Artifacts->Quarantined[0].Stage, CompileStage::AstToFsa);
  EXPECT_NE(Artifacts->Quarantined[0].Reason.Message.find("state budget"),
            std::string::npos);
  EXPECT_EQ(Artifacts->CompiledRuleIds, (std::vector<uint32_t>{0}));
}

TEST(Robustness, ParallelRunExpiredDeadlineReturnsFlaggedPartialResult) {
  // An already-expired deadline must come back promptly with Degraded set and
  // a truthful completion bitmap — never block on the full input.
  std::vector<std::string> Patterns = {"ab", "cd", "ef", "gh"};
  CompileOptions Options;
  Options.MergingFactor = 1; // one engine per rule
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns, Options);
  ASSERT_TRUE(Artifacts.ok());
  std::vector<ImfantEngine> Engines;
  for (const Mfsa &Z : Artifacts->Mfsas)
    Engines.emplace_back(Z);

  Rng Random(2011);
  std::string Input = randomBytes(Random, 1 << 20);

  ParallelRunOptions Run;
  Run.DeadlineMs = 1e-6; // expired before any worker can claim
  Run.ChunkBytes = 4096;
  ParallelRunResult Partial = runParallel(Engines, Input, 2, nullptr, Run);
  EXPECT_TRUE(Partial.Degraded);
  EXPECT_LT(Partial.NumCompleted, Engines.size());
  EXPECT_EQ(Partial.Completed.size(), Engines.size());
  EXPECT_EQ(Partial.Completed.count(), Partial.NumCompleted);

  // A pre-tripped cancellation token behaves the same way.
  std::atomic<bool> Cancel{true};
  ParallelRunOptions Cancelled;
  Cancelled.CancelToken = &Cancel;
  Cancelled.ChunkBytes = 4096;
  ParallelRunResult Stopped =
      runParallel(Engines, Input, 2, nullptr, Cancelled);
  EXPECT_TRUE(Stopped.Degraded);
  EXPECT_EQ(Stopped.NumCompleted, 0u);
  EXPECT_EQ(Stopped.TotalMatches, 0u);
}

TEST(Robustness, HugeClassAndDeepNesting) {
  // Deep nesting and full-range classes stress the recursive descent.
  const int Depth = 200;
  std::string Deep;
  for (int I = 0; I < Depth; ++I)
    Deep += "(a";
  Deep += "b";
  for (int I = 0; I < Depth; ++I)
    Deep += ")";
  Result<Regex> Re = parseRegex(Deep);
  ASSERT_TRUE(Re.ok());
  Result<Nfa> Built = buildNfa(*Re);
  ASSERT_TRUE(Built.ok());
  // The language is exactly Depth a's followed by b.
  std::string Match(Depth, 'a');
  Match += 'b';
  EXPECT_EQ(simulateNfa(*Built, Match), (std::set<size_t>{Match.size()}));
  EXPECT_TRUE(simulateNfa(*Built, Match.substr(1)).empty());

  Result<Regex> Wide = parseRegex("[\\x00-\\xff]{3}");
  ASSERT_TRUE(Wide.ok());
  Nfa WideFsa = optimizeForMerging(*buildNfa(*Wide));
  EXPECT_EQ(simulateNfa(WideFsa, "xyz"), (std::set<size_t>{3}));
}
