//===- ServiceTest.cpp - scan-service tests --------------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for src/service/: wire-protocol framing and its failure modes,
/// the content-addressed compiled-ruleset cache (memory, disk artifact,
/// eviction, negative caching), and the scan server end to end — including
/// the differential contract (service results byte-identical to offline
/// scans under adversarial chunking), per-tenant budget shed isolation,
/// protocol robustness against truncated/oversized/mid-frame-disconnect
/// input, and concurrent connect/disconnect churn with clean shutdown (the
/// CI tsan job runs this suite under `ctest -L service`).
///
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Protocol.h"
#include "service/RulesetCache.h"
#include "service/Server.h"

#include "compiler/Pipeline.h"
#include "engine/Imfant.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "gtest/gtest.h"

using namespace mfsa;
using namespace mfsa::service;

namespace {

const std::vector<std::string> kRules = {"abc", "a.c", "x[0-9]+y", "^start",
                                         "end$"};

std::string testInput() {
  std::string S = "start x12y abc axc noise ";
  for (int I = 0; I < 40; ++I)
    S += "filler" + std::to_string(I) + (I % 5 ? " abc " : " x987y ");
  S += "the end";
  return S;
}

/// The offline truth: one-shot scans of the full input, sorted.
std::vector<ClientMatch> oracleScan(const std::vector<std::string> &Rules,
                                    uint32_t M, std::string_view Input) {
  CompileOptions Opts;
  Opts.MergingFactor = M;
  Opts.EmitAnml = false;
  Result<CompileArtifacts> Art = compileRuleset(Rules, Opts);
  EXPECT_TRUE(Art.ok()) << (Art.ok() ? "" : Art.diag().render());
  MatchRecorder Rec(MatchRecorder::Mode::Collect);
  for (const Mfsa &Z : Art->Mfsas)
    ImfantEngine(Z).run(Input, Rec);
  std::vector<ClientMatch> Out;
  for (const auto &[Rule, End] : Rec.matches())
    Out.push_back(ClientMatch{Rule, End});
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// Starts a loopback-TCP server on an ephemeral port.
std::unique_ptr<ScanServer> startTcp(ServerOptions Opts = {}) {
  Opts.Tcp = true;
  Opts.TcpPort = 0;
  Result<std::unique_ptr<ScanServer>> Server = ScanServer::start(Opts);
  EXPECT_TRUE(Server.ok()) << (Server.ok() ? "" : Server.diag().render());
  return Server.ok() ? Server.take() : nullptr;
}

/// Feeds \p Input through the service in \p ChunkLen-sized chunks and
/// returns the sorted match set.
std::vector<ClientMatch> serviceScan(ScanClient &Client, uint64_t StreamId,
                                     std::string_view Input,
                                     size_t ChunkLen) {
  EXPECT_EQ(StatusCode::Ok, *Client.openStream(StreamId));
  std::vector<ClientMatch> Matches;
  for (size_t Pos = 0; Pos < Input.size(); Pos += ChunkLen) {
    Result<ChunkOutcome> Out =
        Client.sendChunk(StreamId, Input.substr(Pos, ChunkLen));
    EXPECT_TRUE(Out.ok());
    EXPECT_EQ(StatusCode::Ok, Out->Status);
    Matches.insert(Matches.end(), Out->Matches.begin(), Out->Matches.end());
  }
  Result<StreamEnd> End = Client.closeStream(StreamId);
  EXPECT_TRUE(End.ok());
  EXPECT_EQ(StatusCode::Ok, End->Status);
  EXPECT_EQ(Input.size(), End->TotalBytes);
  Matches.insert(Matches.end(), End->Matches.begin(), End->Matches.end());
  std::sort(Matches.begin(), Matches.end());
  return Matches;
}

std::string tempDir(const char *Tag) {
  std::string Dir = "/tmp/mfsa_svc_test_" + std::string(Tag) + "_" +
                    std::to_string(::getpid());
  std::remove(Dir.c_str());
  ::mkdir(Dir.c_str(), 0755);
  return Dir;
}

// --- protocol framing ---------------------------------------------------

TEST(ServiceProtocol, WriterCursorRoundTrip) {
  FrameWriter W;
  W.u8(7);
  W.u32(0xdeadbeef);
  W.u64(0x0123456789abcdefull);
  W.str("hello");
  W.raw("tail");

  FrameCursor Cur(W.body());
  uint8_t A = 0;
  uint32_t B = 0;
  uint64_t C = 0;
  std::string S;
  std::string_view Rest;
  ASSERT_TRUE(Cur.u8(A));
  ASSERT_TRUE(Cur.u32(B));
  ASSERT_TRUE(Cur.u64(C));
  ASSERT_TRUE(Cur.str(S));
  ASSERT_TRUE(Cur.rest(Rest));
  EXPECT_EQ(7u, A);
  EXPECT_EQ(0xdeadbeefu, B);
  EXPECT_EQ(0x0123456789abcdefull, C);
  EXPECT_EQ("hello", S);
  EXPECT_EQ("tail", Rest);
  EXPECT_TRUE(Cur.atEnd());
}

TEST(ServiceProtocol, CursorFailsClosedOnUnderrun) {
  FrameWriter W;
  W.u32(3); // A string length prefix promising 3 bytes...
  W.raw("ab"); // ...but only 2 present.
  FrameCursor Cur(W.body());
  std::string S;
  EXPECT_FALSE(Cur.str(S));
  EXPECT_FALSE(Cur.ok());
  // Poisoned: every later accessor keeps failing.
  uint8_t V = 0;
  EXPECT_FALSE(Cur.u8(V));
  EXPECT_FALSE(Cur.atEnd());
}

TEST(ServiceProtocol, CursorRejectsTrailingGarbage) {
  FrameWriter W;
  W.u32(1);
  W.u8(0xff); // One stray byte past the decoded fields.
  FrameCursor Cur(W.body());
  uint32_t V = 0;
  ASSERT_TRUE(Cur.u32(V));
  EXPECT_FALSE(Cur.atEnd());
}

TEST(ServiceProtocol, ReadFrameOverPipe) {
  int Fds[2];
  ASSERT_EQ(0, ::pipe(Fds));
  FrameWriter W;
  W.u64(42);
  ASSERT_TRUE(writeFrame(Fds[1], MsgType::OpenStream, W.body()));
  uint8_t Type = 0;
  std::string Body;
  EXPECT_EQ(ReadStatus::Frame, readFrame(Fds[0], 1 << 20, Type, Body));
  EXPECT_EQ(static_cast<uint8_t>(MsgType::OpenStream), Type);
  EXPECT_EQ(8u, Body.size());
  ::close(Fds[1]);
  EXPECT_EQ(ReadStatus::Eof, readFrame(Fds[0], 1 << 20, Type, Body));
  ::close(Fds[0]);
}

TEST(ServiceProtocol, ReadFrameTruncatedAndOversized) {
  // Truncated mid-prefix.
  int Fds[2];
  ASSERT_EQ(0, ::pipe(Fds));
  ASSERT_EQ(2, ::write(Fds[1], "\x05\x00", 2));
  ::close(Fds[1]);
  uint8_t Type = 0;
  std::string Body;
  EXPECT_EQ(ReadStatus::Truncated, readFrame(Fds[0], 1 << 20, Type, Body));
  ::close(Fds[0]);

  // Truncated mid-body.
  ASSERT_EQ(0, ::pipe(Fds));
  ASSERT_EQ(6, ::write(Fds[1], "\x05\x00\x00\x00\x01x", 6));
  ::close(Fds[1]);
  EXPECT_EQ(ReadStatus::Truncated, readFrame(Fds[0], 1 << 20, Type, Body));
  ::close(Fds[0]);

  // A 4 GiB-announcing prefix must be rejected before allocation.
  ASSERT_EQ(0, ::pipe(Fds));
  ASSERT_EQ(4, ::write(Fds[1], "\xff\xff\xff\xff", 4));
  EXPECT_EQ(ReadStatus::TooLarge, readFrame(Fds[0], 1 << 20, Type, Body));
  ::close(Fds[1]);
  ::close(Fds[0]);

  // Zero-length payload has no room for the type byte.
  ASSERT_EQ(0, ::pipe(Fds));
  ASSERT_EQ(4, ::write(Fds[1], "\x00\x00\x00\x00", 4));
  EXPECT_EQ(ReadStatus::BadLength, readFrame(Fds[0], 1 << 20, Type, Body));
  ::close(Fds[1]);
  ::close(Fds[0]);
}

// --- ruleset cache ------------------------------------------------------

TEST(ServiceCache, ContentKeyIsStableAndDiscriminating) {
  EXPECT_EQ(RulesetCache::contentKey(kRules, 2),
            RulesetCache::contentKey(kRules, 2));
  EXPECT_NE(RulesetCache::contentKey(kRules, 2),
            RulesetCache::contentKey(kRules, 3));
  std::vector<std::string> Other = kRules;
  Other.back() = "different$";
  EXPECT_NE(RulesetCache::contentKey(kRules, 2),
            RulesetCache::contentKey(Other, 2));
  EXPECT_EQ(32u, RulesetCache::contentKey(kRules, 2).size());
}

TEST(ServiceCache, MemoryHitSharesOneCompilation) {
  obs::MetricsRegistry Registry;
  RulesetCache Cache({}, &Registry);
  CacheSource S1 = CacheSource::Memory, S2 = CacheSource::Compiled;
  Result<std::shared_ptr<const CompiledRuleset>> A =
      Cache.acquire(kRules, 0, &S1);
  Result<std::shared_ptr<const CompiledRuleset>> B =
      Cache.acquire(kRules, 0, &S2);
  ASSERT_TRUE(A.ok() && B.ok());
  EXPECT_EQ(CacheSource::Compiled, S1);
  EXPECT_EQ(CacheSource::Memory, S2);
  EXPECT_EQ(A->get(), B->get()) << "hit must hand out the same tables";
  EXPECT_EQ(1u, Registry.counter("service.cache.hits").value());
  EXPECT_EQ(1u, Registry.counter("service.cache.misses").value());
  EXPECT_EQ(5u, (*A)->NumRules);
  EXPECT_FALSE((*A)->Engines.empty());
}

TEST(ServiceCache, ArtifactWarmStartAcrossCacheInstances) {
  std::string Dir = tempDir("artifact");
  obs::MetricsRegistry Registry;
  CacheOptions Opts;
  Opts.CacheDir = Dir;
  {
    RulesetCache Cold(Opts, &Registry);
    CacheSource Source = CacheSource::Memory;
    ASSERT_TRUE(Cold.acquire(kRules, 2, &Source).ok());
    EXPECT_EQ(CacheSource::Compiled, Source);
  }
  // A fresh cache (a restarted server) must warm-start from the image.
  RulesetCache Warm(Opts, &Registry);
  CacheSource Source = CacheSource::Memory;
  Result<std::shared_ptr<const CompiledRuleset>> R =
      Warm.acquire(kRules, 2, &Source);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(CacheSource::Artifact, Source);
  EXPECT_EQ(1u, Registry.counter("service.cache.artifact_hits").value());

  // Corrupt the image; the next cold acquire must fall back to compiling.
  std::string Path = Dir + "/" + RulesetCache::contentKey(kRules, 2) + ".mfsa";
  {
    std::ofstream F(Path, std::ios::binary | std::ios::trunc);
    F << "garbage";
  }
  RulesetCache Cold2(Opts, &Registry);
  Source = CacheSource::Memory;
  R = Cold2.acquire(kRules, 2, &Source);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(CacheSource::Compiled, Source);
}

TEST(ServiceCache, EvictionKeepsPinnedEntriesAlive) {
  CacheOptions Opts;
  Opts.Capacity = 1;
  RulesetCache Cache(Opts, nullptr);
  Result<std::shared_ptr<const CompiledRuleset>> A =
      Cache.acquire({"aaa"}, 0, nullptr);
  ASSERT_TRUE(A.ok());
  std::shared_ptr<const CompiledRuleset> Pinned = *A;
  ASSERT_TRUE(Cache.acquire({"bbb"}, 0, nullptr).ok()); // Evicts "aaa".
  EXPECT_EQ(1u, Cache.residentEntries());
  // RCU-style: the evicted entry stays valid for its holders.
  EXPECT_EQ(1u, Pinned->Engines.size());
  MatchRecorder Rec;
  Pinned->Engines[0].run("xxaaaxx", Rec);
  EXPECT_EQ(1u, Rec.total());
  // Re-acquiring "aaa" recompiles (it was evicted) rather than crashing.
  CacheSource Source = CacheSource::Memory;
  ASSERT_TRUE(Cache.acquire({"aaa"}, 0, &Source).ok());
  EXPECT_EQ(CacheSource::Compiled, Source);
}

TEST(ServiceCache, CompileFailureIsNegativeCached) {
  obs::MetricsRegistry Registry;
  RulesetCache Cache({}, &Registry);
  Result<std::shared_ptr<const CompiledRuleset>> Bad =
      Cache.acquire({"(unclosed"}, 0, nullptr);
  EXPECT_FALSE(Bad.ok());
  Result<std::shared_ptr<const CompiledRuleset>> Again =
      Cache.acquire({"(unclosed"}, 0, nullptr);
  EXPECT_FALSE(Again.ok());
  // One real compile attempt; the repeat was answered from the slot.
  EXPECT_EQ(1u, Registry.counter("service.cache.compile_failures").value());
}

// --- server end to end --------------------------------------------------

TEST(ServiceServer, DifferentialAgainstOfflineUnderAdversarialChunking) {
  std::unique_ptr<ScanServer> Server = startTcp();
  ASSERT_TRUE(Server);
  std::string Input = testInput();
  std::vector<ClientMatch> Oracle = oracleScan(kRules, 2, Input);
  ASSERT_FALSE(Oracle.empty());

  uint64_t StreamId = 1;
  for (size_t ChunkLen : {size_t(1), size_t(2), size_t(3), size_t(7),
                          size_t(64), Input.size()}) {
    Result<ScanClient> Client = ScanClient::connectTcp(Server->tcpPort());
    ASSERT_TRUE(Client.ok());
    Result<HelloInfo> Hello = Client->hello("diff", kRules, 2);
    ASSERT_TRUE(Hello.ok()) << (Hello.ok() ? "" : Hello.diag().render());
    EXPECT_EQ(5u, Hello->NumRules);
    std::vector<ClientMatch> Got =
        serviceScan(*Client, StreamId++, Input, ChunkLen);
    EXPECT_EQ(Oracle, Got) << "divergence at chunk size " << ChunkLen;
  }
}

TEST(ServiceServer, TenantsShareTheCompiledRuleset) {
  obs::MetricsRegistry Registry;
  ServerOptions Opts;
  Opts.Metrics = &Registry;
  std::unique_ptr<ScanServer> Server = startTcp(std::move(Opts));
  ASSERT_TRUE(Server);

  Result<ScanClient> A = ScanClient::connectTcp(Server->tcpPort());
  Result<ScanClient> B = ScanClient::connectTcp(Server->tcpPort());
  ASSERT_TRUE(A.ok() && B.ok());
  Result<HelloInfo> HelloA = A->hello("tenant-a", kRules, 0);
  Result<HelloInfo> HelloB = B->hello("tenant-b", kRules, 0);
  ASSERT_TRUE(HelloA.ok() && HelloB.ok());
  EXPECT_EQ(CacheSource::Compiled, HelloA->Source);
  EXPECT_EQ(CacheSource::Memory, HelloB->Source)
      << "second tenant must reuse the first tenant's compilation";
  EXPECT_EQ(HelloA->CacheKey, HelloB->CacheKey);
  EXPECT_EQ(1u, Registry.counter("service.cache.hits").value());

  // Both tenants scan concurrently and both match the oracle.
  std::string Input = testInput();
  std::vector<ClientMatch> Oracle = oracleScan(kRules, 0, Input);
  EXPECT_EQ(Oracle, serviceScan(*A, 1, Input, 5));
  EXPECT_EQ(Oracle, serviceScan(*B, 1, Input, 9));
}

TEST(ServiceServer, StreamTrafficBeforeHelloIsDiagnosed) {
  std::unique_ptr<ScanServer> Server = startTcp();
  ASSERT_TRUE(Server);
  Result<ScanClient> Client = ScanClient::connectTcp(Server->tcpPort());
  ASSERT_TRUE(Client.ok());
  std::string Message;
  Result<StatusCode> Code = Client->openStream(1, &Message);
  ASSERT_TRUE(Code.ok());
  EXPECT_EQ(StatusCode::NeedHello, *Code);
  // The connection survives: a proper Hello still works afterwards.
  EXPECT_TRUE(Client->hello("late", kRules, 0).ok());
  EXPECT_EQ(StatusCode::Ok, *Client->openStream(1));
}

TEST(ServiceServer, UnknownAndDuplicateStreamsAreDiagnosed) {
  std::unique_ptr<ScanServer> Server = startTcp();
  ASSERT_TRUE(Server);
  Result<ScanClient> Client = ScanClient::connectTcp(Server->tcpPort());
  ASSERT_TRUE(Client.ok());
  ASSERT_TRUE(Client->hello("t", kRules, 0).ok());

  Result<ChunkOutcome> Orphan = Client->sendChunk(99, "abc");
  ASSERT_TRUE(Orphan.ok());
  EXPECT_EQ(StatusCode::UnknownStream, Orphan->Status);

  ASSERT_EQ(StatusCode::Ok, *Client->openStream(1));
  EXPECT_EQ(StatusCode::DuplicateStream, *Client->openStream(1));
}

TEST(ServiceServer, BadRulesetIsDiagnosedAndConnectionSurvives) {
  std::unique_ptr<ScanServer> Server = startTcp();
  ASSERT_TRUE(Server);
  Result<ScanClient> Client = ScanClient::connectTcp(Server->tcpPort());
  ASSERT_TRUE(Client.ok());
  Result<HelloInfo> Bad = Client->hello("t", {"(unclosed"}, 0);
  EXPECT_FALSE(Bad.ok());
  EXPECT_NE(std::string::npos,
            Bad.diag().render().find("compile-failed"));
  // Same connection, corrected ruleset: accepted.
  EXPECT_TRUE(Client->hello("t", kRules, 0).ok());
}

TEST(ServiceServer, RulesBudgetIsEnforced) {
  ServerOptions Opts;
  Opts.Budget.MaxRulesBytes = 16;
  std::unique_ptr<ScanServer> Server = startTcp(std::move(Opts));
  ASSERT_TRUE(Server);
  Result<ScanClient> Client = ScanClient::connectTcp(Server->tcpPort());
  ASSERT_TRUE(Client.ok());
  Result<HelloInfo> Huge =
      Client->hello("t", {"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"}, 0);
  EXPECT_FALSE(Huge.ok());
  EXPECT_NE(std::string::npos, Huge.diag().render().find("budget"));
}

TEST(ServiceServer, StreamBudgetIsEnforced) {
  ServerOptions Opts;
  Opts.Budget.MaxStreams = 1;
  std::unique_ptr<ScanServer> Server = startTcp(std::move(Opts));
  ASSERT_TRUE(Server);
  Result<ScanClient> Client = ScanClient::connectTcp(Server->tcpPort());
  ASSERT_TRUE(Client.ok());
  ASSERT_TRUE(Client->hello("t", kRules, 0).ok());
  ASSERT_EQ(StatusCode::Ok, *Client->openStream(1));
  EXPECT_EQ(StatusCode::TooManyStreams, *Client->openStream(2));
}

TEST(ServiceServer, OverloadShedsWithoutConsumingAndWithoutCrossTalk) {
  // One deliberately slow worker and a tiny queue budget make the shed
  // deterministic: tenant A's second back-to-back chunk must be refused
  // while the first is still being scanned.
  obs::MetricsRegistry Registry;
  ServerOptions Opts;
  Opts.Workers = 1;
  Opts.Budget.MaxQueuedBytes = 8;
  Opts.DrainDelayUsForTest = 100000; // 100 ms per chunk.
  Opts.Metrics = &Registry;
  std::unique_ptr<ScanServer> Server = startTcp(std::move(Opts));
  ASSERT_TRUE(Server);

  Result<ScanClient> A = ScanClient::connectTcp(Server->tcpPort());
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(A->hello("flooder", kRules, 0).ok());
  ASSERT_EQ(StatusCode::Ok, *A->openStream(1));

  // Two raw Chunk frames back to back, no waiting: 6 + 6 > 8 bytes queued.
  {
    FrameWriter F1;
    F1.u64(1);
    F1.raw("abcabc");
    ASSERT_TRUE(writeFrame(A->fd(), MsgType::Chunk, F1.body()));
    FrameWriter F2;
    F2.u64(1);
    F2.raw("xxyyzz");
    ASSERT_TRUE(writeFrame(A->fd(), MsgType::Chunk, F2.body()));
  }
  // First reply must be the shed of chunk #2 (the reader rejects it while
  // the worker still sleeps on chunk #1).
  bool SawOverload = false, SawChunkDone = false;
  uint64_t Consumed = 0;
  for (int I = 0; I < 4 && !(SawOverload && SawChunkDone); ++I) {
    uint8_t Type = 0;
    std::string Body;
    ASSERT_EQ(ReadStatus::Frame,
              readFrame(A->fd(), kDefaultMaxFrameBytes, Type, Body));
    FrameCursor Cur(Body);
    if (static_cast<MsgType>(Type) == MsgType::Status) {
      uint8_t Code = 0;
      uint64_t Stream = 0;
      std::string Text;
      ASSERT_TRUE(Cur.u8(Code) && Cur.u64(Stream) && Cur.str(Text));
      EXPECT_EQ(static_cast<uint8_t>(StatusCode::Overloaded), Code);
      SawOverload = true;
    } else if (static_cast<MsgType>(Type) == MsgType::ChunkDone) {
      uint64_t Stream = 0, Count = 0, Delivered = 0;
      ASSERT_TRUE(Cur.u64(Stream) && Cur.u64(Consumed) && Cur.u64(Count) &&
                  Cur.u64(Delivered));
      EXPECT_EQ(Count, Delivered) << "no truncation expected here";
      SawChunkDone = true;
    }
  }
  EXPECT_TRUE(SawOverload);
  EXPECT_TRUE(SawChunkDone);
  EXPECT_EQ(6u, Consumed) << "the shed chunk must not be consumed";
  EXPECT_GE(Registry.counter("service.shed.count").value(), 1u);

  // Tenant B (its own budget) is unaffected throughout.
  Result<ScanClient> B = ScanClient::connectTcp(Server->tcpPort());
  ASSERT_TRUE(B.ok());
  ASSERT_TRUE(B->hello("bystander", kRules, 0).ok());
  std::string Input = "abc x42y";
  std::vector<ClientMatch> Oracle = oracleScan(kRules, 0, Input);
  EXPECT_EQ(Oracle, serviceScan(*B, 7, Input, 3));

  // And tenant A's stream still finishes exactly (6 bytes, "abcabc").
  Result<StreamEnd> End = A->closeStream(1);
  ASSERT_TRUE(End.ok());
  EXPECT_EQ(6u, End->TotalBytes);
}

TEST(ServiceServer, ChunkAboveWholeQueueBudgetIsTerminallyRefused) {
  // A chunk that alone exceeds MaxQueuedBytes could never be admitted even
  // by an idle tenant; answering Overloaded ("retry once drained") would
  // loop a compliant client forever, so the refusal must be the terminal
  // chunk-too-large — and the stream must survive for smaller chunks.
  ServerOptions Opts;
  Opts.Budget.MaxQueuedBytes = 16;
  std::unique_ptr<ScanServer> Server = startTcp(std::move(Opts));
  ASSERT_TRUE(Server);
  Result<ScanClient> Client = ScanClient::connectTcp(Server->tcpPort());
  ASSERT_TRUE(Client.ok());
  ASSERT_TRUE(Client->hello("t", kRules, 0).ok());
  ASSERT_EQ(StatusCode::Ok, *Client->openStream(1));

  Result<ChunkOutcome> Huge =
      Client->sendChunk(1, std::string(17, 'a'));
  ASSERT_TRUE(Huge.ok());
  EXPECT_EQ(StatusCode::ChunkTooLarge, Huge->Status);
  EXPECT_NE(std::string::npos, Huge->Message.find("split"));

  // Split into budget-sized chunks the same stream still scans exactly.
  Result<ChunkOutcome> Ok = Client->sendChunk(1, "abc");
  ASSERT_TRUE(Ok.ok());
  EXPECT_EQ(StatusCode::Ok, Ok->Status);
  EXPECT_EQ(3u, Ok->Offset);
  EXPECT_FALSE(Ok->Truncated);
  EXPECT_EQ(Ok->TotalMatches, Ok->Matches.size());
  Result<StreamEnd> End = Client->closeStream(1);
  ASSERT_TRUE(End.ok());
  EXPECT_EQ(3u, End->TotalBytes) << "the refused chunk must not be consumed";
}

TEST(ServiceServer, StreamIdIsReusableTheMomentStreamDoneArrives) {
  // StreamDone must be sent only after the session slot is freed, so a
  // client reopening the same id immediately can never race the erase into
  // a spurious DuplicateStream.
  std::unique_ptr<ScanServer> Server = startTcp();
  ASSERT_TRUE(Server);
  Result<ScanClient> Client = ScanClient::connectTcp(Server->tcpPort());
  ASSERT_TRUE(Client.ok());
  ASSERT_TRUE(Client->hello("reuse", kRules, 0).ok());
  for (int Round = 0; Round < 20; ++Round) {
    ASSERT_EQ(StatusCode::Ok, *Client->openStream(7)) << "round " << Round;
    Result<ChunkOutcome> Out = Client->sendChunk(7, "abc");
    ASSERT_TRUE(Out.ok());
    EXPECT_EQ(StatusCode::Ok, Out->Status);
    Result<StreamEnd> End = Client->closeStream(7);
    ASSERT_TRUE(End.ok());
    EXPECT_EQ(StatusCode::Ok, End->Status);
  }
}

TEST(ServiceServer, ShutdownCompletesWhilePeerStopsReading) {
  // A peer that floods chunks but never reads replies eventually blocks a
  // drain task inside send(2). requestStop() must still complete: the stop
  // path shutdown(2)s the connection without needing the write lock the
  // stuck writer holds, and the failed write unwedges the worker.
  ServerOptions Opts;
  Opts.Workers = 2;
  Opts.WriteTimeoutMs = 60000; // Long: the test must not rely on it.
  std::unique_ptr<ScanServer> Server = startTcp(std::move(Opts));
  ASSERT_TRUE(Server);
  Result<ScanClient> Client = ScanClient::connectTcp(Server->tcpPort());
  ASSERT_TRUE(Client.ok());
  ASSERT_TRUE(Client->hello("greedy", {"a"}, 0).ok());
  ASSERT_EQ(StatusCode::Ok, *Client->openStream(1));

  // ~24 MiB of replies (12 bytes per match pair) against a client that
  // never reads: far beyond loopback socket buffering, so the server's
  // writer reliably wedges in send(2).
  std::string Chunk(128 * 1024, 'a');
  for (int I = 0; I < 16; ++I) {
    FrameWriter F;
    F.u64(1);
    F.raw(Chunk);
    if (!writeFrame(Client->fd(), MsgType::Chunk, F.body()))
      break; // Our own send buffer filled — the server is already wedged.
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  Server->requestStop();
  std::thread Waiter([&] { Server->waitStopped(); });
  for (int I = 0; I < 1000 && !Server->stopped(); ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(Server->stopped())
      << "shutdown deadlocked behind a stuck reply write";
  Waiter.join();
}

TEST(ServiceServer, OversizedFramePrefixIsRejectedBeforeAllocation) {
  ServerOptions Opts;
  Opts.MaxFrameBytes = 1024;
  std::unique_ptr<ScanServer> Server = startTcp(std::move(Opts));
  ASSERT_TRUE(Server);
  Result<ScanClient> Client = ScanClient::connectTcp(Server->tcpPort());
  ASSERT_TRUE(Client.ok());
  // Announce a 64 MiB frame on a 1 KiB server.
  uint32_t Huge = 64u << 20;
  char Prefix[4];
  for (int I = 0; I < 4; ++I)
    Prefix[I] = static_cast<char>((Huge >> (8 * I)) & 0xff);
  ASSERT_EQ(4, ::send(Client->fd(), Prefix, 4, 0));
  uint8_t Type = 0;
  std::string Body;
  ASSERT_EQ(ReadStatus::Frame,
            readFrame(Client->fd(), kDefaultMaxFrameBytes, Type, Body));
  EXPECT_EQ(static_cast<uint8_t>(MsgType::Status), Type);
  FrameCursor Cur(Body);
  uint8_t Code = 0;
  ASSERT_TRUE(Cur.u8(Code));
  EXPECT_EQ(static_cast<uint8_t>(StatusCode::FrameTooLarge), Code);
  // The connection is then closed by the server.
  EXPECT_EQ(ReadStatus::Eof,
            readFrame(Client->fd(), kDefaultMaxFrameBytes, Type, Body));
}

TEST(ServiceServer, MidFrameDisconnectLeavesServerServing) {
  obs::MetricsRegistry Registry;
  ServerOptions Opts;
  Opts.Metrics = &Registry;
  std::unique_ptr<ScanServer> Server = startTcp(std::move(Opts));
  ASSERT_TRUE(Server);
  {
    Result<ScanClient> Rude = ScanClient::connectTcp(Server->tcpPort());
    ASSERT_TRUE(Rude.ok());
    ASSERT_TRUE(Rude->hello("rude", kRules, 0).ok());
    ASSERT_EQ(StatusCode::Ok, *Rude->openStream(1));
    // Promise 100 payload bytes, deliver 10, vanish mid-frame.
    char Prefix[4] = {100, 0, 0, 0};
    ASSERT_EQ(4, ::send(Rude->fd(), Prefix, 4, 0));
    ASSERT_EQ(10, ::send(Rude->fd(), "0123456789", 10, 0));
  } // Destructor closes the socket.

  // The server tore the tenant down (aborting its open stream) and keeps
  // serving new connections exactly as before.
  Result<ScanClient> Client = ScanClient::connectTcp(Server->tcpPort());
  ASSERT_TRUE(Client.ok());
  ASSERT_TRUE(Client->hello("after", kRules, 0).ok());
  std::string Input = testInput();
  EXPECT_EQ(oracleScan(kRules, 0, Input), serviceScan(*Client, 1, Input, 11));
  // The abort is visible in the metrics.
  for (int I = 0; I < 100 && Registry.counter("service.streams.aborted").value() == 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(1u, Registry.counter("service.streams.aborted").value());
}

TEST(ServiceServer, GetStatsReturnsTheMetricsCatalog) {
  std::unique_ptr<ScanServer> Server = startTcp();
  ASSERT_TRUE(Server);
  Result<ScanClient> Client = ScanClient::connectTcp(Server->tcpPort());
  ASSERT_TRUE(Client.ok());
  ASSERT_TRUE(Client->hello("t", kRules, 0).ok());
  Result<std::string> Json = Client->stats();
  ASSERT_TRUE(Json.ok());
  EXPECT_NE(std::string::npos, Json->find("\"service.cache.misses\": 1"));
  EXPECT_NE(std::string::npos, Json->find("service.tenants.active"));
  EXPECT_NE(std::string::npos, Json->find("service.scan.latency_us"));
}

TEST(ServiceServer, ShutdownFrameStopsTheServerWhenAllowed) {
  std::unique_ptr<ScanServer> Server = startTcp();
  ASSERT_TRUE(Server);
  Result<ScanClient> Client = ScanClient::connectTcp(Server->tcpPort());
  ASSERT_TRUE(Client.ok());
  Result<StatusCode> Code = Client->shutdownServer();
  ASSERT_TRUE(Code.ok());
  EXPECT_EQ(StatusCode::Ok, *Code);
  Server->waitStopped();
  EXPECT_TRUE(Server->stopped());
}

TEST(ServiceServer, ShutdownFrameCanBeDisabled) {
  ServerOptions Opts;
  Opts.AllowShutdownFrame = false;
  std::unique_ptr<ScanServer> Server = startTcp(std::move(Opts));
  ASSERT_TRUE(Server);
  Result<ScanClient> Client = ScanClient::connectTcp(Server->tcpPort());
  ASSERT_TRUE(Client.ok());
  std::string Message;
  Result<StatusCode> Code = Client->shutdownServer(&Message);
  ASSERT_TRUE(Code.ok());
  EXPECT_EQ(StatusCode::ProtocolError, *Code);
  EXPECT_FALSE(Server->stopped());
}

TEST(ServiceServer, UdsListenerServesAndUnlinksOnShutdown) {
  std::string Path =
      "/tmp/mfsa_svc_test_uds_" + std::to_string(::getpid()) + ".sock";
  ServerOptions Opts;
  Opts.UdsPath = Path;
  Result<std::unique_ptr<ScanServer>> Server = ScanServer::start(Opts);
  ASSERT_TRUE(Server.ok()) << (Server.ok() ? "" : Server.diag().render());
  Result<ScanClient> Client = ScanClient::connectUds(Path);
  ASSERT_TRUE(Client.ok());
  ASSERT_TRUE(Client->hello("uds", kRules, 0).ok());
  std::string Input = testInput();
  EXPECT_EQ(oracleScan(kRules, 0, Input), serviceScan(*Client, 1, Input, 13));
  Server->reset(); // Clean shutdown...
  EXPECT_NE(0, ::access(Path.c_str(), F_OK)) << "socket file must be removed";
}

// Concurrency soak: tenants hammer the server with connect/scan/disconnect
// churn — half the rounds vanish without closing their streams — then the
// server shuts down cleanly mid-traffic. Run under TSan by the CI tsan job.
TEST(ServiceServer, ConcurrentChurnAndCleanShutdown) {
  obs::MetricsRegistry Registry;
  ServerOptions Opts;
  Opts.Workers = 4;
  Opts.Metrics = &Registry;
  std::unique_ptr<ScanServer> Server = startTcp(std::move(Opts));
  ASSERT_TRUE(Server);
  uint16_t Port = Server->tcpPort();

  std::string Input = testInput();
  std::vector<ClientMatch> Oracle = oracleScan(kRules, 2, Input);
  std::atomic<uint64_t> Divergences{0};

  auto Tenant = [&](unsigned Id) {
    for (unsigned Round = 0; Round < 6; ++Round) {
      Result<ScanClient> Client = ScanClient::connectTcp(Port);
      if (!Client.ok())
        return; // Server may already be stopping.
      if (!Client->hello("churn-" + std::to_string(Id), kRules, 2).ok())
        return;
      if (Round % 2 == 1) {
        // Abandon: open a stream, feed one chunk, vanish.
        if (Client->openStream(1).ok())
          (void)Client->sendChunk(1, "abc abc abc");
        continue;
      }
      std::vector<ClientMatch> Got =
          serviceScan(*Client, 1, Input, 7 + Id * 3);
      if (Got != Oracle)
        Divergences.fetch_add(1);
    }
  };
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 4; ++T)
    Threads.emplace_back(Tenant, T);
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(0u, Divergences.load());

  Server->requestStop();
  Server->waitStopped();
  EXPECT_TRUE(Server->stopped());
  EXPECT_EQ(1u, Registry.counter("service.shutdown.clean").value());
  // Every opened stream was either closed or aborted — nothing leaked.
  EXPECT_EQ(Registry.counter("service.streams.opened").value(),
            Registry.counter("service.streams.closed").value() +
                Registry.counter("service.streams.aborted").value());
}

} // namespace
