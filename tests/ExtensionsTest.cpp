//===- ExtensionsTest.cpp - alphabet atoms, DFA, clustering, sparse engine ---===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"
#include "engine/DfaEngine.h"
#include "engine/SparseImfant.h"
#include "fsa/AlphabetPartition.h"
#include "fsa/Determinize.h"
#include "fsa/Reference.h"
#include "mfsa/Merge.h"
#include "workload/Clustering.h"
#include "workload/Datasets.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <map>

using namespace mfsa;
using namespace mfsa::test;

namespace {

std::vector<Nfa> compileAll(const std::vector<std::string> &Patterns) {
  std::vector<Nfa> Fsas;
  for (const std::string &P : Patterns)
    Fsas.push_back(compileOptimized(P));
  return Fsas;
}

std::vector<uint32_t> iota(size_t N) {
  std::vector<uint32_t> Ids(N);
  for (size_t I = 0; I < N; ++I)
    Ids[I] = static_cast<uint32_t>(I);
  return Ids;
}

/// Per-rule match-end sets from any engine-like callable.
template <typename RunT>
std::map<uint32_t, std::set<size_t>> collect(RunT &&Run) {
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  Run(Recorder);
  std::map<uint32_t, std::set<size_t>> Ends;
  for (const auto &[Rule, End] : Recorder.matches())
    Ends[Rule].insert(static_cast<size_t>(End));
  return Ends;
}

std::map<uint32_t, std::set<size_t>>
oracleEnds(const std::vector<std::string> &Patterns,
           const std::string &Input) {
  std::map<uint32_t, std::set<size_t>> Ends;
  for (size_t I = 0; I < Patterns.size(); ++I) {
    Result<Regex> Re = parseRegex(Patterns[I]);
    EXPECT_TRUE(Re.ok()) << Patterns[I];
    std::set<size_t> E = astMatchEnds(*Re, Input);
    if (!E.empty())
      Ends[static_cast<uint32_t>(I)] = E;
  }
  return Ends;
}

} // namespace

//===----------------------------------------------------------------------===//
// Alphabet partition (partial CC merging, paper §VI-A proposal)
//===----------------------------------------------------------------------===//

TEST(AlphabetPartition, AtomsPartitionTheLabels) {
  std::vector<Nfa> Fsas = compileAll({"[abce]x", "[bcd]y"});
  std::vector<SymbolSet> Atoms = computeAlphabetAtoms(Fsas);

  // Atoms are pairwise disjoint and cover the whole alphabet.
  SymbolSet Union;
  for (size_t I = 0; I < Atoms.size(); ++I) {
    EXPECT_FALSE(Atoms[I].empty());
    for (size_t J = I + 1; J < Atoms.size(); ++J)
      EXPECT_FALSE(Atoms[I].intersects(Atoms[J]));
    Union |= Atoms[I];
  }
  EXPECT_EQ(Union.count(), 256u);

  // [bc] must be an atom (the shared part), and every label a union of
  // atoms.
  bool FoundBc = false;
  for (const SymbolSet &Atom : Atoms)
    if (Atom == SymbolSet::of("bc"))
      FoundBc = true;
  EXPECT_TRUE(FoundBc);
  for (const Nfa &A : Fsas)
    for (const Transition &T : A.transitions())
      for (const SymbolSet &Atom : Atoms)
        if (T.Label.intersects(Atom))
          EXPECT_EQ((T.Label & Atom), Atom)
              << "label " << T.Label.toString() << " splits atom "
              << Atom.toString();
}

TEST(AlphabetPartition, SplitPreservesLanguage) {
  std::vector<Nfa> Fsas =
      compileAll({"[a-d]{2}e", "x[b-f]y", "[ab]|[cd]"});
  std::vector<Nfa> Split = splitAllByAtoms(Fsas);
  Rng Random(31);
  for (size_t I = 0; I < Fsas.size(); ++I) {
    EXPECT_GE(Split[I].numTransitions(), Fsas[I].numTransitions());
    EXPECT_EQ(Split[I].numStates(), Fsas[I].numStates());
    for (int Trial = 0; Trial < 10; ++Trial) {
      std::string Input = randomInput(Random, 15);
      EXPECT_EQ(simulateNfa(Fsas[I], Input), simulateNfa(Split[I], Input));
    }
  }
}

TEST(AlphabetPartition, EnablesPartialCcMerging) {
  // The paper's own example: [abce] and [bcd] share [bc] only. With exact
  // matching nothing merges; with atom splitting the [bc] piece does.
  std::vector<std::string> Patterns = {"[abce]x", "[bcd]x"};
  std::vector<Nfa> Exact = compileAll(Patterns);
  Mfsa NoSplit = mergeFsas(Exact, iota(2));

  std::vector<Nfa> Split = splitAllByAtoms(Exact);
  Mfsa WithSplit = mergeFsas(Split, iota(2));

  EXPECT_LT(WithSplit.numStates(), NoSplit.numStates());
  // A [bc]-labeled transition belonging to both rules must exist.
  bool SharedBc = false;
  for (const MfsaTransition &T : WithSplit.transitions())
    if (T.Label == SymbolSet::of("bc") && T.Bel.test(0) && T.Bel.test(1))
      SharedBc = true;
  EXPECT_TRUE(SharedBc);
  EXPECT_EQ(WithSplit.verify(), "");
}

TEST(AlphabetPartition, PipelineOptionPreservesMatches) {
  std::vector<std::string> Patterns = {"[abce]x", "[bcd]x", "a[0-9]{2}"};
  CompileOptions Plain;
  Plain.MergingFactor = 0;
  Plain.EmitAnml = false;
  CompileOptions SplitOpt = Plain;
  SplitOpt.SplitCcByAtoms = true;

  Result<CompileArtifacts> A = compileRuleset(Patterns, Plain);
  Result<CompileArtifacts> B = compileRuleset(Patterns, SplitOpt);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(B.ok());
  ImfantEngine EngineA(A->Mfsas[0]), EngineB(B->Mfsas[0]);
  std::string Input = "zax bx cx dx a42 e19";
  EXPECT_EQ(collect([&](MatchRecorder &R) { EngineA.run(Input, R); }),
            collect([&](MatchRecorder &R) { EngineB.run(Input, R); }));
}

//===----------------------------------------------------------------------===//
// Determinization + DFA engine
//===----------------------------------------------------------------------===//

TEST(Determinize, SingleRuleAgainstOracle) {
  const char *Patterns[] = {"abc", "a[bc]+d", "x.*y", "a{2,4}", "(ab|ba)c"};
  Rng Random(61);
  for (const char *Pattern : Patterns) {
    std::vector<Nfa> Fsas = compileAll({Pattern});
    Result<Dfa> D = determinize(Fsas, {0});
    ASSERT_TRUE(D.ok()) << Pattern;
    DfaEngine Engine(*D);
    for (int Trial = 0; Trial < 10; ++Trial) {
      std::string Input = randomInput(Random, 25);
      EXPECT_EQ(collect([&](MatchRecorder &R) { Engine.run(Input, R); }),
                oracleEnds({Pattern}, Input))
          << Pattern << " on " << Input;
    }
  }
}

TEST(Determinize, MultiRuleUnionAgainstOracle) {
  std::vector<std::string> Patterns = {"abc", "ab", "b+c", "[cd]a"};
  std::vector<Nfa> Fsas = compileAll(Patterns);
  Result<Dfa> D = determinize(Fsas, iota(Patterns.size()));
  ASSERT_TRUE(D.ok());
  DfaEngine Engine(*D);
  Rng Random(67);
  for (int Trial = 0; Trial < 15; ++Trial) {
    std::string Input = randomInput(Random, 30);
    EXPECT_EQ(collect([&](MatchRecorder &R) { Engine.run(Input, R); }),
              oracleEnds(Patterns, Input))
        << Input;
  }
}

TEST(Determinize, AnchorsRespected) {
  std::vector<std::string> Patterns = {"^ab", "ab$", "ab", "a*"};
  std::vector<Nfa> Fsas = compileAll(Patterns);
  Result<Dfa> D = determinize(Fsas, iota(Patterns.size()));
  ASSERT_TRUE(D.ok());
  DfaEngine Engine(*D);
  std::string Input = "abxab";
  auto Ends = collect([&](MatchRecorder &R) { Engine.run(Input, R); });
  EXPECT_EQ(Ends, oracleEnds(Patterns, Input));
  EXPECT_EQ(Ends[0], (std::set<size_t>{2}));
  EXPECT_EQ(Ends[1], (std::set<size_t>{5}));
}

TEST(Determinize, EmptyMatchingRuleNeverReportsEmpty) {
  // a* matches ε everywhere; only non-empty runs may be reported.
  std::vector<Nfa> Fsas = compileAll({"a*"});
  Result<Dfa> D = determinize(Fsas, {0});
  ASSERT_TRUE(D.ok());
  DfaEngine Engine(*D);
  auto Ends = collect([&](MatchRecorder &R) { Engine.run("bab", R); });
  EXPECT_EQ(Ends[0], (std::set<size_t>{2}));
}

TEST(Determinize, ExplosionCapTriggers) {
  // Many .* patterns force exponential subset growth.
  std::vector<std::string> Patterns;
  for (char C = 'a'; C <= 'j'; ++C)
    Patterns.push_back(std::string(1, C) + ".*" + std::string(1, C) + ".*" +
                       std::string(1, C));
  std::vector<Nfa> Fsas = compileAll(Patterns);
  DeterminizeOptions Options;
  Options.MaxStates = 64;
  Result<Dfa> D = determinize(Fsas, iota(Patterns.size()), Options);
  ASSERT_FALSE(D.ok());
  EXPECT_NE(D.diag().Message.find("explosion"), std::string::npos);
}

TEST(Determinize, DfaMatchesImfantOnMergedRuleset) {
  std::vector<std::string> Patterns = {"get[a-z]+", "post[a-z]+", "getx",
                                       "puty{1,3}"};
  std::vector<Nfa> Fsas = compileAll(Patterns);
  Mfsa Z = mergeFsas(Fsas, iota(Patterns.size()));
  ImfantEngine Nfa(Z);
  Result<Dfa> D = determinize(Fsas, iota(Patterns.size()));
  ASSERT_TRUE(D.ok());
  DfaEngine Dfa(*D);

  Rng Random(71);
  for (int Trial = 0; Trial < 6; ++Trial) {
    std::string Input = "getab postcd getx putyyy " + randomInput(Random, 20);
    EXPECT_EQ(collect([&](MatchRecorder &R) { Nfa.run(Input, R); }),
              collect([&](MatchRecorder &R) { Dfa.run(Input, R); }));
  }
}

//===----------------------------------------------------------------------===//
// Clustering (paper §VIII future work)
//===----------------------------------------------------------------------===//

TEST(Clustering, ProducesAPartition) {
  std::vector<std::string> Patterns = {"aaaa", "aaab", "bbbb", "bbbc",
                                       "cccc", "cccd", "dddd"};
  auto Groups = clusterBySimilarity(Patterns, 2);
  std::vector<bool> Seen(Patterns.size(), false);
  size_t Total = 0;
  for (const auto &Group : Groups) {
    EXPECT_LE(Group.size(), 2u);
    for (uint32_t I : Group) {
      EXPECT_FALSE(Seen[I]);
      Seen[I] = true;
      ++Total;
    }
  }
  EXPECT_EQ(Total, Patterns.size());
}

TEST(Clustering, GroupsSimilarPatterns) {
  // Interleaved families; similarity clustering must reunite them.
  std::vector<std::string> Patterns = {"aaaax", "zzzzy", "aaaaw", "zzzzq"};
  auto Groups = clusterBySimilarity(Patterns, 2);
  ASSERT_EQ(Groups.size(), 2u);
  EXPECT_EQ(Groups[0], (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(Groups[1], (std::vector<uint32_t>{1, 3}));
}

TEST(Clustering, GroupSizeZeroIsOneGroup) {
  std::vector<std::string> Patterns = {"a", "b", "c"};
  auto Groups = clusterBySimilarity(Patterns, 0);
  ASSERT_EQ(Groups.size(), 1u);
  EXPECT_EQ(Groups[0].size(), 3u);
}

TEST(Clustering, RandomGroupingIsDeterministicPartition) {
  auto A = randomGrouping(11, 3, 42);
  auto B = randomGrouping(11, 3, 42);
  EXPECT_EQ(A, B);
  auto C = randomGrouping(11, 3, 43);
  EXPECT_NE(A, C);
  std::vector<bool> Seen(11, false);
  for (const auto &Group : A)
    for (uint32_t I : Group) {
      EXPECT_FALSE(Seen[I]);
      Seen[I] = true;
    }
}

TEST(Clustering, MergeWithGroupingPreservesGlobalIds) {
  std::vector<std::string> Patterns = {"aaaax", "zzzzy", "aaaaw", "zzzzq"};
  std::vector<Nfa> Fsas = compileAll(Patterns);
  auto Groups = clusterBySimilarity(Patterns, 2);
  std::vector<Mfsa> Merged = mergeWithGrouping(Fsas, Groups);
  ASSERT_EQ(Merged.size(), 2u);
  EXPECT_EQ(Merged[0].rule(0).GlobalId, 0u);
  EXPECT_EQ(Merged[0].rule(1).GlobalId, 2u);
  EXPECT_EQ(Merged[1].rule(0).GlobalId, 1u);
  EXPECT_EQ(Merged[1].rule(1).GlobalId, 3u);

  // Matches carry the original rule identity.
  ImfantEngine Engine(Merged[0]);
  auto Ends = collect(
      [&](MatchRecorder &R) { Engine.run("aaaax aaaaw", R); });
  EXPECT_TRUE(Ends.count(0));
  EXPECT_TRUE(Ends.count(2));
}

TEST(Clustering, ClusteredCompressionBeatsRandom) {
  // On a family-structured dataset, clustering at least matches random
  // grouping (it should typically beat it clearly at small M).
  const DatasetSpec &Spec = *findDataset("BRO");
  std::vector<std::string> Rules = generateRuleset(Spec);
  CompileOptions Options;
  Options.MergingFactor = 1;
  Options.EmitAnml = false;
  Result<CompileArtifacts> Artifacts = compileRuleset(Rules, Options);
  ASSERT_TRUE(Artifacts.ok());
  const std::vector<Nfa> &Fsas = Artifacts->OptimizedFsas;

  auto StatesWith = [&](const std::vector<std::vector<uint32_t>> &Groups) {
    return computeSetStats(mergeWithGrouping(Fsas, Groups)).TotalStates;
  };
  uint64_t Clustered = StatesWith(clusterBySimilarity(Rules, 5));
  uint64_t Random = StatesWith(randomGrouping(Rules.size(), 5, 7));
  EXPECT_LT(Clustered, Random);
}

//===----------------------------------------------------------------------===//
// Sparse (state-major) engine variant
//===----------------------------------------------------------------------===//

TEST(SparseEngine, MatchesDenseEngineOnWorkedExamples) {
  std::vector<std::string> Patterns = {"(ad|cb)ab", "a(b|c)"};
  std::vector<Nfa> Fsas = compileAll(Patterns);
  Mfsa Z = mergeFsas(Fsas, iota(Patterns.size()));
  ImfantEngine Dense(Z);
  SparseImfantEngine Sparse(Z);
  for (const char *Input : {"acbab", "degh", "bcdef", ""})
    EXPECT_EQ(collect([&](MatchRecorder &R) { Dense.run(Input, R); }),
              collect([&](MatchRecorder &R) { Sparse.run(Input, R); }))
        << Input;
}

class SparseEngineAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SparseEngineAgreement, RandomRulesets) {
  Rng Random(GetParam());
  std::vector<std::string> Patterns;
  unsigned Count = 2 + Random.nextBelow(4);
  for (unsigned I = 0; I < Count; ++I)
    Patterns.push_back(randomPattern(Random));
  std::vector<Nfa> Fsas = compileAll(Patterns);
  Mfsa Z = mergeFsas(Fsas, iota(Patterns.size()));
  ImfantEngine Dense(Z);
  SparseImfantEngine Sparse(Z);
  for (int Trial = 0; Trial < 8; ++Trial) {
    std::string Input = randomInput(Random, 24);
    EXPECT_EQ(collect([&](MatchRecorder &R) { Dense.run(Input, R); }),
              collect([&](MatchRecorder &R) { Sparse.run(Input, R); }))
        << Input;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseEngineAgreement,
                         ::testing::Values(301, 307, 311, 313, 317, 331));

TEST(SparseEngine, AnchoredRules) {
  std::vector<std::string> Patterns = {"^ab", "ab$", "ab"};
  std::vector<Nfa> Fsas = compileAll(Patterns);
  Mfsa Z = mergeFsas(Fsas, iota(Patterns.size()));
  SparseImfantEngine Engine(Z);
  auto Ends = collect([&](MatchRecorder &R) { Engine.run("abxab", R); });
  EXPECT_EQ(Ends[0], (std::set<size_t>{2}));
  EXPECT_EQ(Ends[1], (std::set<size_t>{5}));
  EXPECT_EQ(Ends[2], (std::set<size_t>{2, 5}));
}
