//===- TestHelpers.h - shared test utilities --------------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the test suite: a random-but-valid RE generator for
/// property tests, random input strings biased toward a small alphabet (so
/// matches actually occur), and oracle comparison utilities.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_TESTS_TESTHELPERS_H
#define MFSA_TESTS_TESTHELPERS_H

#include "engine/Imfant.h"
#include "fsa/Builder.h"
#include "fsa/Passes.h"
#include "fsa/Reference.h"
#include "regex/Parser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace mfsa::test {

/// Generates a random syntactically valid ERE over a tiny alphabet
/// ({a,b,c,d} plus classes) so random inputs hit matches often.
inline std::string randomPattern(Rng &Random, unsigned MaxDepth = 4) {
  if (MaxDepth == 0 || Random.nextBool(0.4)) {
    // Leaf: a character or a small class.
    switch (Random.nextBelow(6)) {
    case 0:
      return "a";
    case 1:
      return "b";
    case 2:
      return "c";
    case 3:
      return "[ab]";
    case 4:
      return "[b-d]";
    default:
      return "d";
    }
  }
  switch (Random.nextBelow(7)) {
  case 0: // concatenation
    return randomPattern(Random, MaxDepth - 1) +
           randomPattern(Random, MaxDepth - 1);
  case 1: // alternation
    return "(" + randomPattern(Random, MaxDepth - 1) + "|" +
           randomPattern(Random, MaxDepth - 1) + ")";
  case 2:
    return "(" + randomPattern(Random, MaxDepth - 1) + ")*";
  case 3:
    return "(" + randomPattern(Random, MaxDepth - 1) + ")+";
  case 4:
    return "(" + randomPattern(Random, MaxDepth - 1) + ")?";
  case 5: {
    uint64_t Lo = Random.nextBelow(3);
    uint64_t Hi = Lo + Random.nextBelow(3);
    return "(" + randomPattern(Random, MaxDepth - 1) + "){" +
           std::to_string(Lo) + "," + std::to_string(Hi) + "}";
  }
  default: {
    uint64_t Lo = 1 + Random.nextBelow(2);
    return "(" + randomPattern(Random, MaxDepth - 1) + "){" +
           std::to_string(Lo) + ",}";
  }
  }
}

/// Random input over {a,b,c,d,e}; 'e' keeps some symbols unmatched.
inline std::string randomInput(Rng &Random, size_t Length) {
  static const char Alphabet[] = "abcde";
  std::string Out;
  Out.reserve(Length);
  for (size_t I = 0; I < Length; ++I)
    Out.push_back(Alphabet[Random.nextBelow(5)]);
  return Out;
}

/// Parses + builds + fully optimizes one pattern; aborts the test on error.
inline Nfa compileOptimized(const std::string &Pattern) {
  Result<Regex> Re = parseRegex(Pattern);
  EXPECT_TRUE(Re.ok()) << Pattern;
  Result<Nfa> Built = buildNfa(*Re);
  EXPECT_TRUE(Built.ok()) << Pattern;
  return optimizeForMerging(*Built);
}

/// Formats a set of offsets for failure messages.
inline std::string formatEnds(const std::set<size_t> &Ends) {
  std::string Out = "{";
  for (size_t E : Ends)
    Out += std::to_string(E) + ",";
  Out += "}";
  return Out;
}

/// Per-global-rule match-end sets from a Collect-mode recorder; the common
/// currency of the differential harness (every engine reports through a
/// MatchRecorder, so normalizing here makes the comparisons engine-blind).
inline std::map<uint32_t, std::set<size_t>>
recorderEnds(const MatchRecorder &Recorder) {
  std::map<uint32_t, std::set<size_t>> Ends;
  for (const auto &[Rule, End] : Recorder.matches())
    Ends[Rule].insert(static_cast<size_t>(End));
  return Ends;
}

/// Brute-force oracle: per-rule match ends straight off the ASTs, keyed
/// like recorderEnds (rules with no matches omitted).
inline std::map<uint32_t, std::set<size_t>>
oracleRuleEnds(const std::vector<std::string> &Patterns,
               std::string_view Input) {
  std::map<uint32_t, std::set<size_t>> Ends;
  for (size_t I = 0; I < Patterns.size(); ++I) {
    Result<Regex> Re = parseRegex(Patterns[I]);
    EXPECT_TRUE(Re.ok()) << Patterns[I];
    std::set<size_t> E = astMatchEnds(*Re, Input);
    if (!E.empty())
      Ends[static_cast<uint32_t>(I)] = E;
  }
  return Ends;
}

/// Adversarial cut-point sets for chunked/input-parallel scanning: each
/// entry is a list of interior cut offsets (unsorted, may repeat, may
/// include 0 and Input.size() — i.e. empty chunks) designed to land
/// boundaries exactly where stitching bugs hide:
///
///   1. at every oracle match END (a match completes at a boundary);
///   2. one byte BEFORE and AFTER every match end (boundary mid-match);
///   3. every byte (1-byte chunks; strided capped for long inputs);
///   4. duplicated cuts plus cuts at 0 and len (empty chunks everywhere);
///   5-6. seeded random cut sets.
///
/// Shared by the streaming Scanner tests (feed per chunk) and the
/// input-parallel tests (InputParallelOptions::CutOverride), so both
/// boundary-stitching mechanisms face identical adversaries.
inline std::vector<std::vector<uint64_t>>
adversarialCuts(Rng &Random, std::string_view Input,
                const std::map<uint32_t, std::set<size_t>> &OracleEnds) {
  const uint64_t Len = Input.size();
  std::set<uint64_t> MatchEnds;
  for (const auto &[Rule, Ends] : OracleEnds)
    for (size_t E : Ends)
      MatchEnds.insert(static_cast<uint64_t>(E));

  std::vector<std::vector<uint64_t>> Variants;
  auto Keep = [&](const std::set<uint64_t> &Cuts) {
    std::vector<uint64_t> Out;
    for (uint64_t C : Cuts)
      if (C <= Len)
        Out.push_back(C);
    Variants.push_back(std::move(Out));
  };

  Keep(MatchEnds);
  {
    std::set<uint64_t> Straddle;
    for (uint64_t E : MatchEnds) {
      if (E > 0)
        Straddle.insert(E - 1);
      Straddle.insert(E + 1);
    }
    Keep(Straddle);
  }
  {
    std::vector<uint64_t> Every;
    const uint64_t Step = Len <= 256 ? 1 : Len / 256;
    for (uint64_t C = 1; C < Len; C += Step)
      Every.push_back(C);
    Variants.push_back(std::move(Every));
  }
  {
    std::vector<uint64_t> Empties = {0, 0, Len, Len};
    if (Len > 1) {
      Empties.push_back(Len / 2);
      Empties.push_back(Len / 2);
    }
    Variants.push_back(std::move(Empties));
  }
  for (int V = 0; V < 2; ++V) {
    std::vector<uint64_t> Cuts;
    const size_t N = 1 + Random.nextBelow(6);
    for (size_t I = 0; I < N; ++I)
      Cuts.push_back(Random.nextBelow(Len + 1));
    Variants.push_back(std::move(Cuts));
  }
  return Variants;
}

/// Splits \p Input at \p Cuts (sorted/clamped here), INCLUDING zero-length
/// chunks from duplicate or terminal cuts — callers feeding a streaming
/// Scanner must forward those empty feeds verbatim.
inline std::vector<std::string_view>
chunksFromCuts(std::string_view Input, std::vector<uint64_t> Cuts) {
  for (uint64_t &C : Cuts)
    C = std::min<uint64_t>(C, Input.size());
  std::sort(Cuts.begin(), Cuts.end());
  std::vector<std::string_view> Chunks;
  uint64_t Prev = 0;
  for (uint64_t C : Cuts) {
    Chunks.push_back(Input.substr(Prev, C - Prev));
    Prev = C;
  }
  Chunks.push_back(Input.substr(Prev));
  return Chunks;
}

/// Formats a whole ruleset for failure messages.
inline std::string formatPatterns(const std::vector<std::string> &Patterns) {
  std::string Out = "{";
  for (const std::string &P : Patterns)
    Out += "\"" + P + "\",";
  Out += "}";
  return Out;
}

} // namespace mfsa::test

#endif // MFSA_TESTS_TESTHELPERS_H
